package xform

import (
	"fmt"

	"cfd/internal/core"
	"cfd/internal/isa"
	"cfd/internal/prog"
)

// LoopKernel is a two-level loop whose *inner loop-branch* is the hard
// branch — the trip count is data-dependent (§IV-C, the astar region #2
// shape of Fig 14) — with a second hard if inside the inner body (Fig 28):
//
//	Init
//	outer:
//	    TripSlice              // computes Trip (may load)
//	    J = 0
//	inner:
//	    if J >= Trip goto innerdone    // the separable loop-branch
//	    InnerSlice             // computes Pred from J (may load)
//	    if Pred == 0 goto noif
//	    CD
//	noif:
//	    J++; goto inner
//	innerdone:
//	    Step; Counter--; if Counter != 0 goto outer
//	Fini; halt
//
// Three decoupling transforms apply (Fig 28): cfdtq sends trip counts
// through the TQ so the loop-branch becomes TCR-driven; cfdbq pushes the
// inner if's predicates through the BQ (the loop-branch stays); cfdbqtq
// combines both, leaving no hard branch anywhere.
type LoopKernel struct {
	Name string

	Init       []isa.Inst
	TripSlice  []isa.Inst // computes Trip from outer state
	InnerSlice []isa.Inst // computes Pred from J and outer state
	CD         []isa.Inst
	Step       []isa.Inst // outer induction updates
	Fini       []isa.Inst

	Trip    isa.Reg // trip count after TripSlice
	Pred    isa.Reg // inner-if predicate after InnerSlice
	J       isa.Reg // inner induction, owned by the pass
	Counter isa.Reg // outer trip count after Init
	// MaxTrip is the caller-asserted static bound on Trip; the BQ
	// variants size their chunks so MaxTrip inner predicates per outer
	// iteration still fit (Fig 28's 120 < 128).
	MaxTrip int64
	Scratch []isa.Reg
	NoAlias bool

	// Note annotates the inner if; LoopNote the loop-branch.
	Note     string
	LoopNote string
}

// KernelName implements Form.
func (k *LoopKernel) KernelName() string { return k.Name }

// Transforms implements Form.
func (k *LoopKernel) Transforms() []Transform {
	return []Transform{TBase, TCFDTQ, TCFDBQ, TCFDBQTQ}
}

// Apply implements Form.
func (k *LoopKernel) Apply(t Transform, p Params) (*prog.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	switch t {
	case TBase:
		return k.Base()
	case TCFDTQ:
		return k.CFDTQ(p)
	case TCFDBQ:
		return k.CFDBQ(p)
	case TCFDBQTQ:
		return k.CFDBQTQ(p)
	case TCFD, TCFDPlus, TDFD, TCFDDFD, THoist, TIfConvert:
		return nil, fmt.Errorf("xform %s: %s applies to single-level branches; this kernel's hard branch is a data-dependent loop-branch — use cfdtq, cfdbq or cfdbqtq (§IV-C, Fig 28)", k.Name, t)
	}
	return nil, fmt.Errorf("xform %s: unknown transform %q", k.Name, t)
}

func (k *LoopKernel) blocks() map[string][]isa.Inst {
	return map[string][]isa.Inst{
		"Init": k.Init, "TripSlice": k.TripSlice, "InnerSlice": k.InnerSlice,
		"CD": k.CD, "Step": k.Step, "Fini": k.Fini,
	}
}

func (k *LoopKernel) inductionRegs() []isa.Reg {
	return (&Kernel{Step: k.Step}).inductionRegs()
}

// Validate checks the kernel's structural requirements.
func (k *LoopKernel) Validate() error {
	for name, block := range k.blocks() {
		if err := straightLine(block); err != nil {
			return fmt.Errorf("xform %s: %s: %w", k.Name, name, err)
		}
	}
	if !blockWrites(k.TripSlice).has(k.Trip) {
		return fmt.Errorf("xform %s: TripSlice does not write the trip register %s", k.Name, k.Trip)
	}
	if !blockWrites(k.InnerSlice).has(k.Pred) {
		return fmt.Errorf("xform %s: InnerSlice does not write the predicate register %s", k.Name, k.Pred)
	}
	if k.MaxTrip < 1 {
		return fmt.Errorf("xform %s: MaxTrip %d must be >= 1", k.Name, k.MaxTrip)
	}
	userWrites := blockWrites(k.TripSlice) | blockWrites(k.InnerSlice) |
		blockWrites(k.CD) | blockWrites(k.Step)
	if userWrites.has(k.J) {
		return fmt.Errorf("xform %s: inner induction %s is owned by the pass and must not be written by kernel blocks", k.Name, k.J)
	}
	if (blockWrites(k.InnerSlice) | blockWrites(k.CD) | blockWrites(k.Step)).has(k.Trip) {
		return fmt.Errorf("xform %s: trip register %s must survive the inner loop (only TripSlice may write it)", k.Name, k.Trip)
	}
	if len(k.Scratch) < 2+len(k.inductionRegs()) {
		return fmt.Errorf("xform %s: need %d scratch registers, have %d",
			k.Name, 2+len(k.inductionRegs()), len(k.Scratch))
	}
	var used regSet
	for _, block := range k.blocks() {
		used |= blockReads(block) | blockWrites(block)
	}
	used.add(k.Counter)
	used.add(k.J)
	used.add(k.Trip)
	for _, r := range k.Scratch {
		if used.has(r) {
			return fmt.Errorf("xform %s: scratch register %s is used by the kernel", k.Name, r)
		}
	}
	// Both consume loops re-execute TripSlice (cfdbq) or drop it
	// entirely (TQ variants); it must be a pure function of the outer
	// inductions, and the inner slice must not lean on its temporaries.
	if upwardExposed(k.TripSlice).intersects(blockWrites(k.TripSlice) | blockWrites(k.InnerSlice)) {
		return fmt.Errorf("xform %s: TripSlice reads loop-internal state and cannot be re-executed in the consume loop", k.Name)
	}
	if upwardExposed(k.InnerSlice).intersects(blockWrites(k.TripSlice)) {
		return fmt.Errorf("xform %s: InnerSlice consumes TripSlice values; the TQ variants have no trip state in the consume loop", k.Name)
	}
	if upwardExposed(k.CD).intersects(blockWrites(k.TripSlice)) {
		return fmt.Errorf("xform %s: CD consumes TripSlice values; the TQ variants have no trip state in the consume loop", k.Name)
	}
	if (blockWrites(k.TripSlice) | blockWrites(k.InnerSlice)).intersects(upwardExposed(k.Step)) {
		return fmt.Errorf("xform %s: Step reads values computed by the slices", k.Name)
	}
	return nil
}

// Classify performs the §II-B analysis for the loop-branch form.
func (k *LoopKernel) Classify() (prog.BranchClass, error) {
	cdWrites := blockWrites(k.CD)
	// Only the slices' live-ins matter: registers they write before reading
	// are iteration-private (see Kernel.Classify).
	sliceReads := upwardExposed(k.TripSlice) | upwardExposed(k.InnerSlice)
	stepReads := blockReads(k.Step)
	switch {
	case cdWrites.intersects(sliceReads):
		return prog.Inseparable, fmt.Errorf("xform %s: CD writes registers the branch slices read (loop-carried dependence)", k.Name)
	case cdWrites.intersects(stepReads) || cdWrites.has(k.Counter) || cdWrites.has(k.J) || cdWrites.has(k.Trip):
		return prog.Inseparable, fmt.Errorf("xform %s: CD writes the loop's induction state", k.Name)
	case !k.NoAlias && (hasLoads(k.TripSlice) || hasLoads(k.InnerSlice)) && hasStores(k.CD):
		return prog.Inseparable, fmt.Errorf("xform %s: possible memory aliasing between slice loads and CD stores (set NoAlias after checking)", k.Name)
	}
	return prog.SeparableLoop, nil
}

func (k *LoopKernel) requireSeparable() error {
	cls, err := k.Classify()
	if cls == prog.SeparableLoop {
		return nil
	}
	if err == nil {
		err = fmt.Errorf("xform %s: branch classified %v, need %v for loop-branch decoupling", k.Name, cls, prog.SeparableLoop)
	}
	return err
}

// recompute returns the backward slice of InnerSlice re-executed on the
// consume side for the values CD needs.
func (k *LoopKernel) recompute() ([]isa.Inst, error) {
	need := upwardExposed(k.CD) & blockWrites(k.InnerSlice)
	re := backwardSlice(k.InnerSlice, need)
	if upwardExposed(re).intersects(blockWrites(k.InnerSlice)) {
		return nil, fmt.Errorf("xform %s: CD consumes inner-slice-internal state that cannot be recomputed", k.Name)
	}
	return re, nil
}

func (k *LoopKernel) noteLoop(b *prog.Builder, suffix string) {
	if k.LoopNote != "" {
		b.Note(k.LoopNote+suffix, prog.SeparableLoop)
	}
}

func (k *LoopKernel) noteIf(b *prog.Builder, suffix string) {
	if k.Note != "" {
		b.Note(k.Note+suffix, prog.SeparableTotal)
	}
}

func (k *LoopKernel) finish(b *prog.Builder) {
	emitBlock(b, k.Fini)
	b.Halt()
}

// Base emits the untransformed two-level loop.
func (k *LoopKernel) Base() (*prog.Program, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	b := prog.NewBuilder()
	emitBlock(b, k.Init)
	b.Label("outer")
	emitBlock(b, k.TripSlice)
	b.Li(k.J, 0)
	b.Label("inner")
	k.noteLoop(b, " (loop-branch)")
	b.Branch(isa.BGE, k.J, k.Trip, "innerdone")
	emitBlock(b, k.InnerSlice)
	k.noteIf(b, "")
	b.Branch(isa.BEQ, k.Pred, isa.Zero, "noif")
	emitBlock(b, k.CD)
	b.Label("noif")
	b.I(isa.ADDI, k.J, k.J, 1)
	b.Jump("inner")
	b.Label("innerdone")
	emitBlock(b, k.Step)
	b.I(isa.ADDI, k.Counter, k.Counter, -1)
	b.Branch(isa.BNE, k.Counter, isa.Zero, "outer")
	k.finish(b)
	return b.Build()
}

// emitTripGen emits one strip-mined trip-count generation loop: TripSlice,
// PushTQ, Step, over chunkReg iterations counted in tmpReg.
func (k *LoopKernel) emitTripGen(b *prog.Builder, label string, chunkReg, tmpReg isa.Reg) {
	b.Mov(tmpReg, chunkReg)
	b.Label(label)
	emitBlock(b, k.TripSlice)
	b.PushTQ(k.Trip)
	emitBlock(b, k.Step)
	b.I(isa.ADDI, tmpReg, tmpReg, -1)
	b.Branch(isa.BNE, tmpReg, isa.Zero, label)
}

// CFDTQ emits trip-count-queue decoupling (§IV-C): loop 1 pushes each
// outer iteration's trip count; loop 2 runs the inner loop TCR-driven, so
// the data-dependent loop-branch never mispredicts. Trip counts wider than
// the TQ entry (overflow bit set) fall back to a software inner loop that
// recomputes the count (§IV-C4).
func (k *LoopKernel) CFDTQ(p Params) (*prog.Program, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if err := k.requireSeparable(); err != nil {
		return nil, err
	}
	chunkSize := min(p.tqChunk(), int64(p.TQSize))
	inductions := k.inductionRegs()
	chunkReg, tmpReg := k.Scratch[0], k.Scratch[1]
	shadows := k.Scratch[2 : 2+len(inductions)]
	overflowPossible := k.MaxTrip > core.MaxTripCount

	b := prog.NewBuilder()
	emitBlock(b, k.Init)
	b.Label("chunk")
	emitChunkN(b, chunkReg, tmpReg, k.Counter, chunkSize)
	emitSnapshot(b, shadows, inductions)
	k.emitTripGen(b, "gen", chunkReg, tmpReg)
	emitRestore(b, shadows, inductions)
	// Loop 2: TCR-driven inner looping.
	b.Mov(tmpReg, chunkReg)
	b.Label("outer2")
	if overflowPossible {
		b.PopTQOV("ovf")
	} else {
		b.PopTQ()
	}
	b.Li(k.J, 0)
	b.Jump("test")
	b.Label("body")
	emitBlock(b, k.InnerSlice)
	k.noteIf(b, "")
	b.Branch(isa.BEQ, k.Pred, isa.Zero, "noif")
	emitBlock(b, k.CD)
	b.Label("noif")
	b.I(isa.ADDI, k.J, k.J, 1)
	b.Label("test")
	k.noteLoop(b, " (TCR)")
	b.BranchTCR("body")
	if overflowPossible {
		b.Jump("join")
		// Overflow path: the TQ entry carries no count; recompute it in
		// software and run the branch-driven inner loop.
		b.Label("ovf")
		emitBlock(b, k.TripSlice)
		b.Li(k.J, 0)
		b.Label("otest")
		k.noteLoop(b, " (overflow)")
		b.Branch(isa.BGE, k.J, k.Trip, "join")
		emitBlock(b, k.InnerSlice)
		b.Branch(isa.BEQ, k.Pred, isa.Zero, "onoif")
		emitBlock(b, k.CD)
		b.Label("onoif")
		b.I(isa.ADDI, k.J, k.J, 1)
		b.Jump("otest")
		b.Label("join")
	}
	emitBlock(b, k.Step)
	b.I(isa.ADDI, tmpReg, tmpReg, -1)
	b.Branch(isa.BNE, tmpReg, isa.Zero, "outer2")
	b.R(isa.SUB, k.Counter, k.Counter, chunkReg)
	b.Branch(isa.BNE, k.Counter, isa.Zero, "chunk")
	k.finish(b)
	return b.Build()
}

// CFDBQ emits BQ-only decoupling of the inner if (Fig 28): loop 1 walks
// the chunk's inner iterations pushing the if's predicates; loop 2
// consumes them. The hard loop-branch remains in both loops — CFD(BQ)
// alone removes only the if's mispredictions.
func (k *LoopKernel) CFDBQ(p Params) (*prog.Program, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if err := k.requireSeparable(); err != nil {
		return nil, err
	}
	chunkSize, err := p.bqLoopChunk(k.MaxTrip)
	if err != nil {
		return nil, fmt.Errorf("xform %s: %w", k.Name, err)
	}
	re, err := k.recompute()
	if err != nil {
		return nil, err
	}
	inductions := k.inductionRegs()
	chunkReg, tmpReg := k.Scratch[0], k.Scratch[1]
	shadows := k.Scratch[2 : 2+len(inductions)]

	b := prog.NewBuilder()
	emitBlock(b, k.Init)
	b.Label("chunk")
	emitChunkN(b, chunkReg, tmpReg, k.Counter, chunkSize)
	emitSnapshot(b, shadows, inductions)
	// Loop 1: predicate generation across the inner iterations.
	b.Mov(tmpReg, chunkReg)
	b.Label("gen")
	emitBlock(b, k.TripSlice)
	b.Li(k.J, 0)
	b.Label("gentest")
	k.noteLoop(b, " (loop-branch)")
	b.Branch(isa.BGE, k.J, k.Trip, "gendone")
	emitBlock(b, k.InnerSlice)
	b.PushBQ(k.Pred)
	b.I(isa.ADDI, k.J, k.J, 1)
	b.Jump("gentest")
	b.Label("gendone")
	emitBlock(b, k.Step)
	b.I(isa.ADDI, tmpReg, tmpReg, -1)
	b.Branch(isa.BNE, tmpReg, isa.Zero, "gen")
	emitRestore(b, shadows, inductions)
	// Loop 2: consume; the trip count is re-derived by TripSlice.
	b.Mov(tmpReg, chunkReg)
	b.Label("outer2")
	emitBlock(b, k.TripSlice)
	b.Li(k.J, 0)
	b.Jump("test")
	b.Label("body")
	k.noteIf(b, " (decoupled)")
	b.BranchBQ("doif")
	b.Jump("noif")
	b.Label("doif")
	emitBlock(b, re)
	emitBlock(b, k.CD)
	b.Label("noif")
	b.I(isa.ADDI, k.J, k.J, 1)
	b.Label("test")
	k.noteLoop(b, " (loop-branch 2)")
	b.Branch(isa.BLT, k.J, k.Trip, "body")
	emitBlock(b, k.Step)
	b.I(isa.ADDI, tmpReg, tmpReg, -1)
	b.Branch(isa.BNE, tmpReg, isa.Zero, "outer2")
	b.R(isa.SUB, k.Counter, k.Counter, chunkReg)
	b.Branch(isa.BNE, k.Counter, isa.Zero, "chunk")
	k.finish(b)
	return b.Build()
}

// CFDBQTQ emits the combined transformation (Fig 28): trip counts are
// pushed twice, so both the predicate-generation loop and the consume
// loop run TCR-driven — no hard branch survives anywhere, which is why
// BQ+TQ gains exceed the sum of the individual gains.
func (k *LoopKernel) CFDBQTQ(p Params) (*prog.Program, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if err := k.requireSeparable(); err != nil {
		return nil, err
	}
	bqChunk, err := p.bqLoopChunk(k.MaxTrip)
	if err != nil {
		return nil, fmt.Errorf("xform %s: %w", k.Name, err)
	}
	chunkSize := min(bqChunk, p.tqChunk())
	if k.MaxTrip > core.MaxTripCount {
		// bqLoopChunk already bounds MaxTrip <= BQSize, far below the
		// TQ entry width; this is unreachable unless the ISA shrinks.
		return nil, fmt.Errorf("xform %s: MaxTrip %d exceeds the TQ entry range", k.Name, k.MaxTrip)
	}
	re, err := k.recompute()
	if err != nil {
		return nil, err
	}
	inductions := k.inductionRegs()
	chunkReg, tmpReg := k.Scratch[0], k.Scratch[1]
	shadows := k.Scratch[2 : 2+len(inductions)]

	b := prog.NewBuilder()
	emitBlock(b, k.Init)
	b.Label("chunk")
	emitChunkN(b, chunkReg, tmpReg, k.Counter, chunkSize)
	emitSnapshot(b, shadows, inductions)
	// Loop 1: trip counts for the predicate-generation loop.
	k.emitTripGen(b, "gen", chunkReg, tmpReg)
	emitRestore(b, shadows, inductions)
	// Loop 2: TCR-driven predicate generation.
	b.Mov(tmpReg, chunkReg)
	b.Label("mid")
	b.PopTQ()
	b.Li(k.J, 0)
	b.Jump("midtest")
	b.Label("midbody")
	emitBlock(b, k.InnerSlice)
	b.PushBQ(k.Pred)
	b.I(isa.ADDI, k.J, k.J, 1)
	b.Label("midtest")
	k.noteLoop(b, " (TCR gen)")
	b.BranchTCR("midbody")
	emitBlock(b, k.Step)
	b.I(isa.ADDI, tmpReg, tmpReg, -1)
	b.Branch(isa.BNE, tmpReg, isa.Zero, "mid")
	emitRestore(b, shadows, inductions)
	// Re-push the trip counts for the consume loop (the reloads hit L1:
	// the chunk's lines are resident).
	k.emitTripGen(b, "regen", chunkReg, tmpReg)
	emitRestore(b, shadows, inductions)
	// Loop 3: TCR-driven consumption.
	b.Mov(tmpReg, chunkReg)
	b.Label("fin")
	b.PopTQ()
	b.Li(k.J, 0)
	b.Jump("fintest")
	b.Label("finbody")
	k.noteIf(b, " (decoupled)")
	b.BranchBQ("findo")
	b.Jump("finno")
	b.Label("findo")
	emitBlock(b, re)
	emitBlock(b, k.CD)
	b.Label("finno")
	b.I(isa.ADDI, k.J, k.J, 1)
	b.Label("fintest")
	k.noteLoop(b, " (TCR)")
	b.BranchTCR("finbody")
	emitBlock(b, k.Step)
	b.I(isa.ADDI, tmpReg, tmpReg, -1)
	b.Branch(isa.BNE, tmpReg, isa.Zero, "fin")
	b.R(isa.SUB, k.Counter, k.Counter, chunkReg)
	b.Branch(isa.BNE, k.Counter, isa.Zero, "chunk")
	k.finish(b)
	return b.Build()
}
