package xform

import (
	"strings"
	"testing"

	"cfd/internal/isa"
	"cfd/internal/prog"
)

// TestDecouplingTransformsNeverEmitWrongPrograms sweeps the §II-B
// rejection taxonomy — loop-carried dependence, CD writing induction
// state, aliasing without the NoAlias assertion, and an early-exit kernel
// whose exit check cannot actually exit — and asserts every decoupling
// transform returns (nil, descriptive error): a kernel outside the
// contract must be rejected, never silently transformed.
func TestDecouplingTransformsNeverEmitWrongPrograms(t *testing.T) {
	cases := []struct {
		name     string
		mutate   func(*Kernel)
		want     string // substring of every rejection error
		runnable bool   // base program still terminates
	}{
		{
			"loop-carried dependence",
			func(k *Kernel) {
				k.CD = append(k.CD, isa.Inst{Op: isa.ADDI, Rd: 3, Rs1: 3, Imm: 1})
			},
			"loop-carried",
			true,
		},
		{
			// The clobbered counter can skip zero, so this kernel's base
			// program does not even terminate — rejection is the only
			// acceptable outcome.
			"CD writes induction state",
			func(k *Kernel) {
				k.CD = append(k.CD, isa.Inst{Op: isa.ADDI, Rd: 4, Rs1: 4, Imm: -1})
			},
			"induction",
			false,
		},
		{
			"aliasing without NoAlias",
			func(k *Kernel) { k.NoAlias = false },
			"alias",
			true,
		},
	}
	for _, c := range cases {
		k := soplexKernel(100)
		c.mutate(k)
		for _, tr := range []Transform{TCFD, TCFDPlus, TCFDDFD, THoist} {
			p, err := k.Apply(tr, DefaultParams())
			if err == nil {
				t.Errorf("%s: %s accepted the kernel", c.name, tr)
				continue
			}
			if p != nil {
				t.Errorf("%s: %s returned a program alongside the error", c.name, tr)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("%s: %s error %q does not mention %q", c.name, tr, err, c.want)
			}
		}
		// DFD is prefetch-only and needs no separability: it accepts
		// these kernels, but its output must still retire exactly the
		// baseline's memory — prefetches are architectural no-ops.
		if !c.runnable {
			continue
		}
		base, err := k.Apply(TBase, DefaultParams())
		if err != nil {
			t.Fatalf("%s: base: %v", c.name, err)
		}
		dfd, err := k.Apply(TDFD, DefaultParams())
		if err != nil {
			t.Fatalf("%s: dfd: %v", c.name, err)
		}
		want := runProg(t, base, kernelMem(100, 7)).Checksum()
		if got := runProg(t, dfd, kernelMem(100, 7)).Checksum(); got != want {
			t.Errorf("%s: DFD memory %#x differs from base %#x", c.name, got, want)
		}
	}
}

// TestValidateRejectsNonExitingExitBlock covers the early-exit contract:
// an Exit block that never writes the exit predicate could spin the
// decoupled consume loop forever, so Validate must refuse it up front —
// and so must every transform, including Base.
func TestValidateRejectsNonExitingExitBlock(t *testing.T) {
	k := soplexKernel(100)
	k.ExitPred = 19
	// The "exit check" computes a temp but never writes r19.
	k.Exit = []isa.Inst{{Op: isa.SEQ, Rd: 9, Rs1: 7, Rs2: 3}}
	err := k.Validate()
	if err == nil || !strings.Contains(err.Error(), "does not write the exit predicate") {
		t.Fatalf("Validate = %v, want non-exiting exit rejection", err)
	}
	for _, tr := range []Transform{TBase, TCFD, TDFD, TCFDDFD} {
		if p, err := k.Apply(tr, DefaultParams()); err == nil || p != nil {
			t.Errorf("%s: accepted a kernel with a non-exiting Exit block (err=%v)", tr, err)
		}
	}

	// The complementary shape: the exit predicate leaks into another
	// block, so a stale value could exit a chunk that never took the
	// branch.
	k = soplexKernel(100)
	k.ExitPred = 19
	k.Exit = []isa.Inst{{Op: isa.SEQ, Rd: 19, Rs1: 7, Rs2: 3}}
	k.Step = append(k.Step, isa.Inst{Op: isa.ADDI, Rd: 19, Rs1: 19, Imm: 0})
	if err := k.Validate(); err == nil || !strings.Contains(err.Error(), "only by the Exit block") {
		t.Fatalf("Validate = %v, want exit-predicate ownership rejection", err)
	}
}

// TestRequireSeparableAlwaysErrors pins the hardened guard: for any kernel
// whose class is not SeparableTotal, requireSeparable returns a non-nil
// error even if the classifier produced the class without one — the
// historical bug was a (nil, nil) return from CFD.
func TestRequireSeparableAlwaysErrors(t *testing.T) {
	k := soplexKernel(100)
	k.NoAlias = false
	if err := k.requireSeparable(); err == nil {
		t.Fatal("requireSeparable = nil for a non-total kernel")
	}
	if cls, _ := k.Classify(); cls == prog.SeparableTotal {
		t.Fatal("test kernel unexpectedly classified SeparableTotal")
	}
}
