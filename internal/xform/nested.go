package xform

import (
	"fmt"

	"cfd/internal/isa"
	"cfd/internal/prog"
)

// NestedKernel is a two-level guarded loop — the "complex scenario" the
// paper's multi-level decoupling extension targets (§I, and the structure
// of the astar region #1 case study, Fig 22):
//
//	loop:
//	    OuterSlice                 // computes OuterPred
//	    if OuterPred == 0 goto skip
//	    InnerSlice                 // only safe under OuterPred; computes InnerPred
//	    if InnerPred == 0 goto skip
//	    CD
//	skip:
//	    Step; Counter--; loop
//
// The transformation decouples into three loops sharing the BQ with two
// predicate streams: loop 1 pushes the outer predicates; loop 2 — guarded
// by the popped outer predicate — evaluates the inner slice and pushes the
// combined predicate (0 on the unguarded path); loop 3 guards the CD with
// the combined predicate. Chunks are half the BQ size because the two
// streams coexist.
type NestedKernel struct {
	Name string

	Init       []isa.Inst
	OuterSlice []isa.Inst
	InnerSlice []isa.Inst
	CD         []isa.Inst
	Step       []isa.Inst

	OuterPred isa.Reg
	InnerPred isa.Reg
	Counter   isa.Reg
	Scratch   []isa.Reg
	NoAlias   bool
	Note      string
}

// flat lowers the nested kernel to a Kernel-shaped view for the shared
// structural validation (the combined slice is OuterSlice+InnerSlice with
// the inner predicate as the overall one; conservative but sufficient).
func (k *NestedKernel) flat() *Kernel {
	return &Kernel{
		Name:    k.Name,
		Init:    k.Init,
		Slice:   append(append([]isa.Inst{}, k.OuterSlice...), k.InnerSlice...),
		CD:      k.CD,
		Step:    k.Step,
		Pred:    k.InnerPred,
		Counter: k.Counter,
		Scratch: k.Scratch,
		NoAlias: k.NoAlias,
	}
}

// Validate checks structure and separability at both levels.
func (k *NestedKernel) Validate() error {
	if err := k.flat().Validate(); err != nil {
		return err
	}
	if !blockWrites(k.OuterSlice).has(k.OuterPred) {
		return fmt.Errorf("xform %s: OuterSlice does not write the outer predicate %s", k.Name, k.OuterPred)
	}
	if cls, err := k.flat().Classify(); cls != prog.SeparableTotal {
		return err
	}
	// Loop 2 re-executes the inner slice after loop 1 ran all outer
	// slices; the inner slice therefore must not consume outer-slice
	// temporaries beyond what loop 2 recomputes — require the inner
	// slice's live-ins to come from inductions/Init only, or from the
	// outer slice's recomputable (induction-derived) values.
	needs := upwardExposed(k.InnerSlice) & blockWrites(k.OuterSlice)
	if needs != 0 {
		re := backwardSlice(k.OuterSlice, needs)
		if upwardExposed(re).intersects(blockWrites(k.OuterSlice)) {
			return fmt.Errorf("xform %s: inner slice depends on outer-slice state that cannot be recomputed", k.Name)
		}
	}
	return nil
}

// Base emits the untransformed nested loop.
func (k *NestedKernel) Base() (*prog.Program, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	b := prog.NewBuilder()
	emitBlock(b, k.Init)
	b.Label("loop")
	emitBlock(b, k.OuterSlice)
	if k.Note != "" {
		b.Note(k.Note+" (outer)", prog.SeparablePartial)
	}
	b.Branch(isa.BEQ, k.OuterPred, isa.Zero, "skip")
	emitBlock(b, k.InnerSlice)
	if k.Note != "" {
		b.Note(k.Note+" (inner)", prog.SeparableTotal)
	}
	b.Branch(isa.BEQ, k.InnerPred, isa.Zero, "skip")
	emitBlock(b, k.CD)
	b.Label("skip")
	emitBlock(b, k.Step)
	b.I(isa.ADDI, k.Counter, k.Counter, -1)
	b.Branch(isa.BNE, k.Counter, isa.Zero, "loop")
	b.Halt()
	return b.Build()
}

// CFD emits the three-loop multi-level decoupling.
func (k *NestedKernel) CFD() (*prog.Program, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	inductions := k.flat().inductionRegs()
	chunkReg, tmpReg := k.Scratch[0], k.Scratch[1]
	shadows := k.Scratch[2 : 2+len(inductions)]

	// Values the inner slice needs from the outer slice (recomputed in
	// loop 2) and values the CD needs from either slice (recomputed in
	// loop 3; Validate vetted recomputability of the flat slice).
	innerNeeds := upwardExposed(k.InnerSlice) & blockWrites(k.OuterSlice)
	reInner := backwardSlice(k.OuterSlice, innerNeeds)
	flatSlice := k.flat().Slice
	cdNeeds := upwardExposed(k.CD) & blockWrites(flatSlice)
	reCD := backwardSlice(flatSlice, cdNeeds)
	if upwardExposed(reCD).intersects(blockWrites(flatSlice)) {
		return nil, fmt.Errorf("xform %s: CD consumes slice-internal state that cannot be recomputed", k.Name)
	}

	const chunk = 64 // two BQ streams share the 128-entry BQ
	b := prog.NewBuilder()
	emitBlock(b, k.Init)
	b.Label("chunk")
	b.Li(chunkReg, chunk)
	b.R(isa.SLT, tmpReg, k.Counter, chunkReg)
	b.R(isa.CMOVNZ, chunkReg, k.Counter, tmpReg)
	for i, r := range inductions {
		b.Mov(shadows[i], r)
	}
	// Loop 1: outer predicates (stream 1).
	b.Mov(tmpReg, chunkReg)
	b.Label("gen")
	emitBlock(b, k.OuterSlice)
	b.PushBQ(k.OuterPred)
	emitBlock(b, k.Step)
	b.I(isa.ADDI, tmpReg, tmpReg, -1)
	b.Branch(isa.BNE, tmpReg, isa.Zero, "gen")
	for i, r := range inductions {
		b.Mov(r, shadows[i])
	}
	// Loop 2: guarded inner evaluation (stream 2).
	b.Mov(tmpReg, chunkReg)
	b.Label("mid")
	if k.Note != "" {
		b.Note(k.Note+" (outer, decoupled)", prog.SeparablePartial)
	}
	b.BranchBQ("midwork")
	b.PushBQ(isa.Zero)
	b.Jump("midskip")
	b.Label("midwork")
	emitBlock(b, reInner)
	emitBlock(b, k.InnerSlice)
	b.PushBQ(k.InnerPred)
	b.Label("midskip")
	emitBlock(b, k.Step)
	b.I(isa.ADDI, tmpReg, tmpReg, -1)
	b.Branch(isa.BNE, tmpReg, isa.Zero, "mid")
	for i, r := range inductions {
		b.Mov(r, shadows[i])
	}
	// Loop 3: the control-dependent region under the combined predicate.
	b.Mov(tmpReg, chunkReg)
	b.Label("fin")
	if k.Note != "" {
		b.Note(k.Note+" (combined, decoupled)", prog.SeparableTotal)
	}
	b.BranchBQ("finwork")
	b.Jump("finskip")
	b.Label("finwork")
	emitBlock(b, reCD)
	emitBlock(b, k.CD)
	b.Label("finskip")
	emitBlock(b, k.Step)
	b.I(isa.ADDI, tmpReg, tmpReg, -1)
	b.Branch(isa.BNE, tmpReg, isa.Zero, "fin")
	b.R(isa.SUB, k.Counter, k.Counter, chunkReg)
	b.Branch(isa.BNE, k.Counter, isa.Zero, "chunk")
	b.Halt()
	return b.Build()
}
