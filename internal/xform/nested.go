package xform

import (
	"fmt"

	"cfd/internal/isa"
	"cfd/internal/prog"
)

// NestedKernel is a two-level guarded loop — the "complex scenario" the
// paper's multi-level decoupling extension targets (§I, and the structure
// of the astar region #1 case study, Fig 22):
//
//	loop:
//	    OuterSlice                 // computes OuterPred
//	    if OuterPred == 0 goto skip
//	    InnerSlice                 // only safe under OuterPred; computes InnerPred
//	    if InnerPred == 0 goto skip
//	    Update                     // optional monotone update (map[x] = fill)
//	    CD
//	    Exit                       // optional: computes ExitPred
//	    if ExitPred != 0 goto done
//	skip:
//	    Step; Counter--; loop
//	done:
//	Fini; halt
//
// The transformation decouples into three loops sharing the BQ with two
// predicate streams: loop 1 pushes the outer predicates; loop 2 — guarded
// by the popped outer predicate — evaluates the inner slice and pushes the
// combined predicate (0 on the unguarded path); loop 3 guards the CD with
// the combined predicate. Chunks are half the BQ size because the two
// streams coexist.
//
// With an Update block the guarded region itself rewrites the data the
// outer slice reads (astar's map-fill). That is sound to decouple only
// when the update is *monotone* — it can falsify the outer predicate for
// later iterations but never make it true (MonotoneUpdate is the caller's
// assertion of that contract). Loop 2 then re-evaluates the full outer
// slice for fresh values under the stale BQ guard (stale-false implies
// fresh-false), combines both predicates, and applies the update
// if-converted under the combined predicate.
//
// With an Exit block the region can terminate early; loop 2 evaluates the
// exit alongside the combined predicate to stop generating, the streams
// are bounded by BQ marks, and both break paths discard leftovers with a
// Forward bulk-pop (§IV-A).
type NestedKernel struct {
	Name string

	Init       []isa.Inst
	OuterSlice []isa.Inst
	InnerSlice []isa.Inst
	Update     []isa.Inst // optional; requires MonotoneUpdate
	CD         []isa.Inst
	Exit       []isa.Inst // optional early-exit check; requires ExitPred
	Step       []isa.Inst
	Fini       []isa.Inst // epilogue before halt

	OuterPred isa.Reg
	InnerPred isa.Reg
	ExitPred  isa.Reg
	Counter   isa.Reg
	// Scratch: two for strip-mining, one per induction register, one for
	// the combined predicate (Update/Exit kernels), one for the update
	// store select (Update kernels).
	Scratch []isa.Reg
	NoAlias bool
	// MonotoneUpdate asserts that Update's stores only ever falsify the
	// outer predicate for later iterations, never truthify it.
	MonotoneUpdate bool

	// OuterNote/InnerNote/ExitNote annotate the three branches for the
	// classification study.
	OuterNote string
	InnerNote string
	ExitNote  string
}

// KernelName implements Form.
func (k *NestedKernel) KernelName() string { return k.Name }

// Transforms implements Form.
func (k *NestedKernel) Transforms() []Transform {
	return []Transform{TBase, TCFD, TDFD, TCFDDFD}
}

// Apply implements Form.
func (k *NestedKernel) Apply(t Transform, p Params) (*prog.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	switch t {
	case TBase:
		return k.Base()
	case TCFD:
		return k.CFD(p)
	case TDFD:
		return k.DFD(p)
	case TCFDDFD:
		return k.CFDDFD(p)
	case TCFDPlus:
		return nil, fmt.Errorf("xform %s: %s: the two-level form communicates by recomputation across three loops; the value queue applies to single-level kernels", k.Name, t)
	case THoist, TIfConvert:
		return nil, fmt.Errorf("xform %s: %s applies to single-level kernels only", k.Name, t)
	case TCFDTQ, TCFDBQ, TCFDBQTQ:
		return nil, fmt.Errorf("xform %s: %s requires a loop-branch kernel (LoopKernel, §IV-C/Fig 28)", k.Name, t)
	}
	return nil, fmt.Errorf("xform %s: unknown transform %q", k.Name, t)
}

func (k *NestedKernel) hasUpdate() bool { return len(k.Update) > 0 }
func (k *NestedKernel) hasExit() bool   { return len(k.Exit) > 0 || k.ExitPred != 0 }

// freshOuter reports whether loop 2 must re-evaluate the full outer slice
// for fresh values: required whenever an Update can change them or an Exit
// must be computed ahead of the CD stream.
func (k *NestedKernel) freshOuter() bool { return k.hasUpdate() || k.hasExit() }

// flat lowers the nested kernel to a Kernel-shaped view for the shared
// structural validation and classification (the combined slice is
// OuterSlice+InnerSlice with the inner predicate as the overall one;
// conservative but sufficient). Update is deliberately absent: its
// intentional store-to-slice-data aliasing is sanctioned by the
// MonotoneUpdate contract, not by NoAlias.
func (k *NestedKernel) flat() *Kernel {
	return &Kernel{
		Name:     k.Name,
		Init:     k.Init,
		Slice:    append(append([]isa.Inst{}, k.OuterSlice...), k.InnerSlice...),
		CD:       k.CD,
		Exit:     k.Exit,
		Step:     k.Step,
		Fini:     k.Fini,
		Pred:     k.InnerPred,
		ExitPred: k.ExitPred,
		Counter:  k.Counter,
		Scratch:  k.Scratch,
		NoAlias:  k.NoAlias,
	}
}

// Validate checks the kernel's structural requirements.
func (k *NestedKernel) Validate() error {
	fl := k.flat()
	if err := fl.Validate(); err != nil {
		return err
	}
	if !blockWrites(k.OuterSlice).has(k.OuterPred) {
		return fmt.Errorf("xform %s: OuterSlice does not write the outer predicate %s", k.Name, k.OuterPred)
	}
	if k.hasUpdate() != k.MonotoneUpdate {
		return fmt.Errorf("xform %s: Update and MonotoneUpdate must be set together — a mid-loop update is sound only when it monotonically falsifies the outer predicate", k.Name)
	}
	if err := straightLine(k.Update); err != nil {
		return fmt.Errorf("xform %s: Update: %w", k.Name, err)
	}
	inductions := fl.inductionRegs()
	need := 2 + len(inductions)
	if k.freshOuter() {
		need++ // combined predicate
	}
	if k.hasUpdate() {
		need++ // update store select
	}
	if len(k.Scratch) < need {
		return fmt.Errorf("xform %s: need %d scratch registers, have %d", k.Name, need, len(k.Scratch))
	}
	if k.hasUpdate() {
		wU := blockWrites(k.Update)
		var state regSet
		state.add(k.OuterPred)
		state.add(k.InnerPred)
		state.add(k.Counter)
		if k.ExitPred != 0 {
			state.add(k.ExitPred)
		}
		for _, r := range inductions {
			state.add(r)
		}
		if wU.intersects(state) {
			return fmt.Errorf("xform %s: Update writes predicate or induction state", k.Name)
		}
		for name, blk := range map[string][]isa.Inst{
			"OuterSlice": k.OuterSlice, "InnerSlice": k.InnerSlice,
			"CD": k.CD, "Exit": k.Exit, "Step": k.Step,
		} {
			if wU.intersects(upwardExposed(blk)) {
				return fmt.Errorf("xform %s: Update clobbers a register %s reads live-in — the unguarded if-converted update would corrupt it", k.Name, name)
			}
		}
		uU := blockReads(k.Update) | wU
		for _, r := range k.Scratch {
			if uU.has(r) {
				return fmt.Errorf("xform %s: scratch register %s is used by Update", k.Name, r)
			}
		}
	}
	if k.freshOuter() {
		if upwardExposed(k.OuterSlice).intersects(blockWrites(k.OuterSlice) | blockWrites(k.InnerSlice)) {
			return fmt.Errorf("xform %s: the decoupled mid loop re-evaluates the outer slice for fresh values, but it is not recomputable from inductions alone", k.Name)
		}
		if upwardExposed(k.InnerSlice).intersects(blockWrites(k.InnerSlice)) {
			return fmt.Errorf("xform %s: inner slice carries its own state across iterations", k.Name)
		}
	}
	if k.hasExit() {
		if upwardExposed(k.Exit).intersects(blockWrites(k.CD)) {
			return fmt.Errorf("xform %s: the exit predicate depends on CD results; the mid loop cannot evaluate it ahead of the CD stream", k.Name)
		}
	}
	// Loop 2's lighter (no fresh-outer) scheme recomputes only the
	// outer-slice values the inner slice consumes; they must be derivable
	// from inductions.
	needs := upwardExposed(k.InnerSlice) & blockWrites(k.OuterSlice)
	if needs != 0 {
		re := backwardSlice(k.OuterSlice, needs)
		if upwardExposed(re).intersects(blockWrites(k.OuterSlice)) {
			return fmt.Errorf("xform %s: inner slice depends on outer-slice state that cannot be recomputed", k.Name)
		}
	}
	return nil
}

// Classify performs the §II-B analysis on the flattened view; a nested
// kernel that passes is *partially* separable — the outer branch alone
// can be decoupled exactly, the combined branch via the two-stream
// scheme.
func (k *NestedKernel) Classify() (prog.BranchClass, error) {
	if cls, err := k.flat().Classify(); cls != prog.SeparableTotal {
		return cls, err
	}
	return prog.SeparablePartial, nil
}

func (k *NestedKernel) requireSeparable() error {
	cls, err := k.Classify()
	if cls == prog.SeparablePartial {
		return nil
	}
	if err == nil {
		err = fmt.Errorf("xform %s: branch classified %v, need %v for multi-level decoupling", k.Name, cls, prog.SeparablePartial)
	}
	return err
}

func (k *NestedKernel) finish(b *prog.Builder) {
	if k.hasExit() {
		b.Label("done")
	}
	emitBlock(b, k.Fini)
	b.Halt()
}

// emitBaseLoop emits the untransformed nested loop over the counter
// register, branching to exitLabel on early exit.
func (k *NestedKernel) emitBaseLoop(b *prog.Builder, counter isa.Reg, prefix, exitLabel string) {
	b.Label(prefix + "loop")
	emitBlock(b, k.OuterSlice)
	if k.OuterNote != "" {
		b.Note(k.OuterNote, prog.SeparablePartial)
	}
	b.Branch(isa.BEQ, k.OuterPred, isa.Zero, prefix+"skip")
	emitBlock(b, k.InnerSlice)
	if k.InnerNote != "" {
		b.Note(k.InnerNote, prog.SeparableTotal)
	}
	b.Branch(isa.BEQ, k.InnerPred, isa.Zero, prefix+"skip")
	emitBlock(b, k.Update)
	emitBlock(b, k.CD)
	if k.hasExit() {
		emitBlock(b, k.Exit)
		if k.ExitNote != "" {
			b.Note(k.ExitNote, prog.EasyToPredict)
		}
		b.Branch(isa.BNE, k.ExitPred, isa.Zero, exitLabel)
	}
	b.Label(prefix + "skip")
	emitBlock(b, k.Step)
	b.I(isa.ADDI, counter, counter, -1)
	b.Branch(isa.BNE, counter, isa.Zero, prefix+"loop")
}

// Base emits the untransformed nested loop.
func (k *NestedKernel) Base() (*prog.Program, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	b := prog.NewBuilder()
	emitBlock(b, k.Init)
	k.emitBaseLoop(b, k.Counter, "", "done")
	k.finish(b)
	return b.Build()
}

// CFD emits the three-loop multi-level decoupling.
func (k *NestedKernel) CFD(p Params) (*prog.Program, error) {
	return k.emitCFD(p, false)
}

// CFDDFD emits the combined transformation (Fig 26): each chunk runs the
// DFD prefetch loop first, then the three decoupled loops over the warmed
// data.
func (k *NestedKernel) CFDDFD(p Params) (*prog.Program, error) {
	return k.emitCFD(p, true)
}

func (k *NestedKernel) emitCFD(p Params, withPrefetch bool) (*prog.Program, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := k.requireSeparable(); err != nil {
		return nil, err
	}
	fl := k.flat()
	inductions := fl.inductionRegs()
	chunkReg, tmpReg := k.Scratch[0], k.Scratch[1]
	shadows := k.Scratch[2 : 2+len(inductions)]
	next := 2 + len(inductions)
	var comb, sel isa.Reg
	if k.freshOuter() {
		comb = k.Scratch[next]
		next++
	}
	if k.hasUpdate() {
		sel = k.Scratch[next]
	}

	// Values the inner slice needs from the outer slice (recomputed in
	// loop 2 when the outer slice is not re-run whole) and values the CD
	// and exit check need from either slice (recomputed in loop 3).
	flatSlice := fl.Slice
	var reInner []isa.Inst
	if !k.freshOuter() {
		innerNeeds := upwardExposed(k.InnerSlice) & blockWrites(k.OuterSlice)
		reInner = backwardSlice(k.OuterSlice, innerNeeds)
	}
	cdNeeds := (upwardExposed(k.CD) | upwardExposed(k.Exit)) & blockWrites(flatSlice)
	reCD := backwardSlice(flatSlice, cdNeeds)
	if upwardExposed(reCD).intersects(blockWrites(flatSlice)) {
		return nil, fmt.Errorf("xform %s: CD consumes slice-internal state that cannot be recomputed", k.Name)
	}

	b := prog.NewBuilder()
	emitBlock(b, k.Init)
	b.Label("chunk")
	emitChunkN(b, chunkReg, tmpReg, k.Counter, p.dualStreamChunk())
	emitSnapshot(b, shadows, inductions)
	if withPrefetch {
		pf := prefetchBody(flatSlice)
		b.Mov(tmpReg, chunkReg)
		b.Label("pf")
		emitBlock(b, pf)
		emitBlock(b, k.Step)
		b.I(isa.ADDI, tmpReg, tmpReg, -1)
		b.Branch(isa.BNE, tmpReg, isa.Zero, "pf")
		emitRestore(b, shadows, inductions)
	}
	// Loop 1: outer predicates (stream 1).
	b.Mov(tmpReg, chunkReg)
	b.Label("gen")
	emitBlock(b, k.OuterSlice)
	b.PushBQ(k.OuterPred)
	emitBlock(b, k.Step)
	b.I(isa.ADDI, tmpReg, tmpReg, -1)
	b.Branch(isa.BNE, tmpReg, isa.Zero, "gen")
	if k.hasExit() {
		// Bound stream 1 so a mid-chunk exit can discard leftovers in
		// bulk; clear the exit predicate so a chunk with no taken
		// iterations cannot see a stale value.
		b.MarkBQ()
		b.Li(k.ExitPred, 0)
	}
	emitRestore(b, shadows, inductions)
	// Loop 2: guarded inner evaluation (stream 2). The stale outer
	// predicate from stream 1 is a sound guard: with a monotone update
	// stale-false implies fresh-false, so only the taken path needs the
	// fresh re-evaluation.
	b.Mov(tmpReg, chunkReg)
	b.Label("mid")
	if k.OuterNote != "" {
		b.Note(k.OuterNote+" (decoupled guard)", prog.SeparablePartial)
	}
	b.BranchBQ("midwork")
	b.PushBQ(isa.Zero)
	b.Jump("midskip")
	b.Label("midwork")
	if k.freshOuter() {
		emitBlock(b, k.OuterSlice)
		emitBlock(b, k.InnerSlice)
		b.R(isa.AND, comb, k.OuterPred, k.InnerPred)
		// The update commits under the combined predicate, if-converted:
		// stores become load/select/store, register writes are dead
		// values on the false path (Validate vetted that).
		for _, in := range k.Update {
			if in.Op.IsStore() {
				b.Load(loadFor(in.Op), sel, in.Rs1, in.Imm)
				b.R(isa.CMOVNZ, sel, in.Rs2, comb)
				b.Store(in.Op, sel, in.Rs1, in.Imm)
				continue
			}
			b.Raw(in)
		}
		b.PushBQ(comb)
		if k.hasExit() {
			emitBlock(b, k.Exit)
			b.R(isa.AND, k.ExitPred, k.ExitPred, comb)
			b.Branch(isa.BNE, k.ExitPred, isa.Zero, "midbreak")
		}
	} else {
		emitBlock(b, reInner)
		emitBlock(b, k.InnerSlice)
		b.PushBQ(k.InnerPred)
	}
	b.Label("midskip")
	emitBlock(b, k.Step)
	b.I(isa.ADDI, tmpReg, tmpReg, -1)
	b.Branch(isa.BNE, tmpReg, isa.Zero, "mid")
	if k.hasExit() {
		// Normal completion falls through: Forward consumes stream 1's
		// mark with nothing left; a mid-chunk exit discards the leftover
		// outer predicates. Either way stream 2 gets its own mark.
		b.Label("midbreak")
		b.ForwardBQ()
		b.MarkBQ()
	}
	emitRestore(b, shadows, inductions)
	// Loop 3: the control-dependent region under the combined predicate.
	b.Mov(tmpReg, chunkReg)
	b.Label("fin")
	if k.OuterNote != "" {
		b.Note("combined (decoupled)", prog.SeparableTotal)
	}
	b.BranchBQ("finwork")
	b.Jump("finskip")
	b.Label("finwork")
	emitBlock(b, reCD)
	emitBlock(b, k.CD)
	if k.hasExit() {
		emitBlock(b, k.Exit)
		b.Branch(isa.BNE, k.ExitPred, isa.Zero, "finbreak")
	}
	b.Label("finskip")
	emitBlock(b, k.Step)
	b.I(isa.ADDI, tmpReg, tmpReg, -1)
	b.Branch(isa.BNE, tmpReg, isa.Zero, "fin")
	if k.hasExit() {
		b.Label("finbreak")
		b.ForwardBQ()
		b.Branch(isa.BNE, k.ExitPred, isa.Zero, "done")
	}
	b.R(isa.SUB, k.Counter, k.Counter, chunkReg)
	b.Branch(isa.BNE, k.Counter, isa.Zero, "chunk")
	k.finish(b)
	return b.Build()
}

// DFD emits the data-flow decoupling transformation (§V): each chunk is
// preceded by a prefetch loop over both slices' loads, then the original
// nested loop runs over the warmed chunk.
func (k *NestedKernel) DFD(p Params) (*prog.Program, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	fl := k.flat()
	inductions := fl.inductionRegs()
	chunkReg, tmpReg := k.Scratch[0], k.Scratch[1]
	shadows := k.Scratch[2 : 2+len(inductions)]
	pf := prefetchBody(fl.Slice)

	b := prog.NewBuilder()
	emitBlock(b, k.Init)
	b.Label("chunk")
	emitChunkN(b, chunkReg, tmpReg, k.Counter, p.bqChunk())
	emitSnapshot(b, shadows, inductions)
	b.Mov(tmpReg, chunkReg)
	b.Label("pf")
	emitBlock(b, pf)
	emitBlock(b, k.Step)
	b.I(isa.ADDI, tmpReg, tmpReg, -1)
	b.Branch(isa.BNE, tmpReg, isa.Zero, "pf")
	emitRestore(b, shadows, inductions)
	b.Mov(tmpReg, chunkReg)
	k.emitBaseLoop(b, tmpReg, "w", "done")
	b.R(isa.SUB, k.Counter, k.Counter, chunkReg)
	b.Branch(isa.BNE, k.Counter, isa.Zero, "chunk")
	k.finish(b)
	return b.Build()
}
