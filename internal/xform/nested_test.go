package xform

import (
	"math/rand"
	"testing"

	"cfd/internal/config"
	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/pipeline"
	"cfd/internal/prog"
)

// nestedKernel: if (a[i] > k1) { if (b[a[i] & mask] < k2) { CD } } — the
// astar-style structure with the inner load "guarded" by the outer
// predicate.
func nestedKernel(n int64) *NestedKernel {
	return &NestedKernel{
		Name: "nested-demo",
		Init: []isa.Inst{
			{Op: isa.ADDI, Rd: 1, Rs1: 0, Imm: 0x100000}, // a cursor
			{Op: isa.ADDI, Rd: 2, Rs1: 0, Imm: 0x400000}, // b base
			{Op: isa.ADDI, Rd: 3, Rs1: 0, Imm: 500},      // k1
			{Op: isa.ADDI, Rd: 5, Rs1: 0, Imm: 300},      // k2
			{Op: isa.ADDI, Rd: 4, Rs1: 0, Imm: n},
			{Op: isa.ADDI, Rd: 12, Rs1: 0, Imm: 0},
		},
		OuterSlice: []isa.Inst{
			{Op: isa.LD, Rd: 7, Rs1: 1, Imm: 0},
			{Op: isa.SLT, Rd: 8, Rs1: 3, Rs2: 7},
		},
		InnerSlice: []isa.Inst{
			{Op: isa.ANDI, Rd: 9, Rs1: 7, Imm: 1023},
			{Op: isa.SHLI, Rd: 9, Rs1: 9, Imm: 3},
			{Op: isa.ADD, Rd: 9, Rs1: 9, Rs2: 2},
			{Op: isa.LD, Rd: 10, Rs1: 9, Imm: 0},
			{Op: isa.SLT, Rd: 11, Rs1: 10, Rs2: 5},
		},
		CD: []isa.Inst{
			{Op: isa.ADD, Rd: 12, Rs1: 12, Rs2: 7},
			{Op: isa.ADD, Rd: 12, Rs1: 12, Rs2: 10},
			{Op: isa.XOR, Rd: 13, Rs1: 12, Rs2: 7},
			{Op: isa.SHRI, Rd: 13, Rs1: 13, Imm: 2},
			{Op: isa.ADD, Rd: 12, Rs1: 12, Rs2: 13},
		},
		Step: []isa.Inst{
			{Op: isa.ADDI, Rd: 1, Rs1: 1, Imm: 8},
		},
		OuterPred: 8,
		InnerPred: 11,
		Counter:   4,
		Scratch:   []isa.Reg{20, 21, 22},
		NoAlias:   true,
		OuterNote: "nested (outer)",
		InnerNote: "nested (inner)",
	}
}

func nestedMem(n int64) *mem.Memory {
	rng := rand.New(rand.NewSource(13))
	m := mem.New()
	a := make([]uint64, n)
	bArr := make([]uint64, 1024)
	for i := range a {
		a[i] = uint64(rng.Int63n(1000))
	}
	for i := range bArr {
		bArr[i] = uint64(rng.Int63n(1000))
	}
	m.WriteUint64s(0x100000, a)
	m.WriteUint64s(0x400000, bArr)
	return m
}

func TestNestedCFDMatchesBase(t *testing.T) {
	const n = 1200
	k := nestedKernel(n)
	base, err := k.Base()
	if err != nil {
		t.Fatal(err)
	}
	want := runProg(t, base, nestedMem(n))
	cfdP, err := k.CFD(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	got := runProg(t, cfdP, nestedMem(n))
	if !want.Equal(got) {
		t.Fatal("multi-level decoupling diverges from base")
	}
}

func TestNestedCFDEliminatesBothLevels(t *testing.T) {
	const n = 10000
	k := nestedKernel(n)
	base, _ := k.Base()
	cfdP, err := k.CFD(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	bCore, err := pipeline.New(config.SandyBridge(), base, nestedMem(n))
	if err != nil {
		t.Fatal(err)
	}
	if err := bCore.Run(0); err != nil {
		t.Fatal(err)
	}
	cCore, err := pipeline.New(config.SandyBridge(), cfdP, nestedMem(n))
	if err != nil {
		t.Fatal(err)
	}
	if err := cCore.Run(0); err != nil {
		t.Fatal(err)
	}
	if bCore.Stats.MPKI() < 20 {
		t.Errorf("baseline MPKI = %.1f, expected two hard branches", bCore.Stats.MPKI())
	}
	if cCore.Stats.MPKI() > 1 {
		t.Errorf("decoupled MPKI = %.2f, want ~0 (both levels removed)", cCore.Stats.MPKI())
	}
	if cCore.Stats.BQPops == 0 {
		t.Error("no BQ pops")
	}
}

func TestNestedValidateRejectsBadShapes(t *testing.T) {
	k := nestedKernel(100)
	k.OuterPred = 25 // not written by the outer slice
	if err := k.Validate(); err == nil {
		t.Error("bad outer predicate accepted")
	}

	k2 := nestedKernel(100)
	// CD writes a register the outer slice reads: inseparable, so the
	// decoupling transforms must reject it (Base still emits).
	k2.CD = append(k2.CD, isa.Inst{Op: isa.ADDI, Rd: 3, Rs1: 3, Imm: 1})
	if cls, err := k2.Classify(); cls == prog.SeparablePartial || err == nil {
		t.Errorf("loop-carried dependence classified %v, %v", cls, err)
	}
	if _, err := k2.CFD(DefaultParams()); err == nil {
		t.Error("CFD accepted a loop-carried dependence")
	}
	if _, err := k2.Base(); err != nil {
		t.Errorf("Base rejected a structurally valid kernel: %v", err)
	}
}
