package xform

import (
	"fmt"

	"cfd/internal/config"
)

// Params carries the architectural queue capacities the pass strip-mines
// against (§III-B: "the loop is strip-mined into chunks no larger than the
// BQ size"). They come from the machine configuration so that resizing a
// queue in internal/config automatically resizes every generated program's
// chunks — there is exactly one place queue capacities live.
type Params struct {
	BQSize int // branch queue entries
	VQSize int // value queue entries (CFD+, §IV-B)
	TQSize int // trip-count queue entries (§IV-C)
}

// ParamsFrom extracts the transformation parameters from a core config.
func ParamsFrom(c config.Core) Params {
	return Params{BQSize: c.BQSize, VQSize: c.VQSize, TQSize: c.TQSize}
}

// DefaultParams returns the parameters of the paper's modeled core.
func DefaultParams() Params { return ParamsFrom(config.SandyBridge()) }

// Validate rejects degenerate queue capacities.
func (p Params) Validate() error {
	if p.BQSize < 2 || p.VQSize < 2 || p.TQSize < 2 {
		return fmt.Errorf("xform: degenerate queue params (BQ=%d VQ=%d TQ=%d); need >= 2 each",
			p.BQSize, p.VQSize, p.TQSize)
	}
	return nil
}

// bqChunk is the strip-mining chunk when one predicate stream has the BQ
// to itself.
func (p Params) bqChunk() int64 { return int64(p.BQSize) }

// vqChunk is the chunk when communicated values travel through the VQ:
// half the smaller queue, because VQ entries pin physical registers for
// their whole queue lifetime (see config.Validate's NumPhysRegs floor).
func (p Params) vqChunk() int64 { return int64(min(p.BQSize, p.VQSize)) / 2 }

// dualStreamChunk is the chunk when two predicate streams coexist in the
// BQ (the multi-level decoupling of the nested form).
func (p Params) dualStreamChunk() int64 { return int64(p.BQSize) / 2 }

// tqChunk is the chunk for trip-count-queue decoupling (§IV-C): trip
// counts are small, so the bound is conservative — half the smaller of
// BQ and TQ keeps the save/restore images and TQ occupancy bounded.
func (p Params) tqChunk() int64 { return int64(min(p.BQSize, p.TQSize)) / 2 }

// bqLoopChunk is the chunk when every outer iteration pushes up to
// maxTrip inner predicates into the BQ (Fig 28's BQ-on-inner-branch
// variants): the chunk shrinks so a full chunk of worst-case inner loops
// still fits.
func (p Params) bqLoopChunk(maxTrip int64) (int64, error) {
	if maxTrip < 1 {
		return 0, fmt.Errorf("xform: loop kernel MaxTrip %d must be >= 1", maxTrip)
	}
	c := int64(p.BQSize) / maxTrip
	if c < 1 {
		return 0, fmt.Errorf("xform: MaxTrip %d exceeds the BQ capacity %d; no chunk size fits", maxTrip, p.BQSize)
	}
	return c, nil
}
