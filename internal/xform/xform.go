// Package xform is the automatic CFD transformation pass — the analog of
// the gcc pass the paper describes (§III-B): "CFD can be applied either
// manually by the programmer or automatically by the compiler. We
// implemented a gcc compiler pass for CFD ... and demonstrated comparable
// performance to manual CFD for totally separable branches."
//
// The pass operates on a structured loop kernel: straight-line instruction
// blocks for the branch slice (predicate computation), the
// control-dependent region, and the induction step. It
//
//   - verifies total separability by register dataflow (the branch's
//     backward slice must not read anything its control-dependent region
//     writes, §II-B),
//   - computes the values the control-dependent region consumes from the
//     slice and either recomputes their backward slices in the second loop
//     (plain CFD) or routes them through the value queue (CFD+, §IV-B),
//   - strip-mines the loop into BQ-sized chunks (§III-B), snapshotting and
//     restoring the induction registers around the decoupled loop pair,
//   - and can instead emit the DFD prefetch transformation (§V): a first
//     loop containing only the slice's loads (as prefetches) and their
//     address slices.
package xform

import (
	"fmt"

	"cfd/internal/isa"
	"cfd/internal/prog"
)

// Kernel is a structured single-level loop:
//
//	Init                     // once
//	loop:
//	    Slice                // computes Pred (may load; straight-line)
//	    if Pred == 0 goto skip
//	    CD                   // control-dependent region (straight-line)
//	skip:
//	    Step                 // induction updates (straight-line)
//	    Counter--
//	    if Counter != 0 goto loop
//	halt
type Kernel struct {
	Name string

	Init  []isa.Inst
	Slice []isa.Inst
	CD    []isa.Inst
	Step  []isa.Inst

	// Pred holds the predicate after Slice (non-zero = execute CD).
	Pred isa.Reg
	// Counter holds the trip count after Init.
	Counter isa.Reg
	// Scratch lists registers the pass may clobber: at least two for
	// strip-mining plus one per induction register (Step write).
	Scratch []isa.Reg
	// NoAlias asserts that loads in Slice never alias stores in CD —
	// memory disjointness is the caller's (programmer's/compiler's)
	// obligation, exactly as in the paper's manual transformations.
	NoAlias bool

	// Note annotates the hard branch for the classification study.
	Note string
}

// regSet is a small register set.
type regSet uint32

func (s regSet) has(r isa.Reg) bool       { return s&(1<<r) != 0 }
func (s *regSet) add(r isa.Reg)           { *s |= 1 << r }
func (s regSet) intersects(o regSet) bool { return s&o&^1 != 0 } // r0 never counts

// reads returns the registers an instruction reads (conditional moves read
// their destination).
func reads(in isa.Inst) regSet {
	var s regSet
	if in.Op.ReadsRs1() {
		s.add(in.Rs1)
	}
	if in.Op.ReadsRs2() {
		s.add(in.Rs2)
	}
	if in.Op == isa.CMOVZ || in.Op == isa.CMOVNZ {
		s.add(in.Rd)
	}
	return s
}

// writes returns the register an instruction writes, as a set.
func writes(in isa.Inst) regSet {
	var s regSet
	if in.Op.WritesRd() && in.Rd != isa.Zero {
		s.add(in.Rd)
	}
	return s
}

func blockReads(block []isa.Inst) regSet {
	var s regSet
	for _, in := range block {
		s |= reads(in)
	}
	return s
}

func blockWrites(block []isa.Inst) regSet {
	var s regSet
	for _, in := range block {
		s |= writes(in)
	}
	return s
}

// upwardExposed returns the registers read by a block before any write in
// the block itself — its live-in set.
func upwardExposed(block []isa.Inst) regSet {
	var exposed, written regSet
	for _, in := range block {
		exposed |= reads(in) &^ written
		written |= writes(in)
	}
	return exposed
}

func straightLine(block []isa.Inst) error {
	for _, in := range block {
		if in.Op.IsControl() || in.Op == isa.HALT {
			return fmt.Errorf("control transfer %s inside a straight-line block", in)
		}
		if in.Op.IsCFD() {
			return fmt.Errorf("CFD instruction %s inside a kernel block", in)
		}
	}
	return nil
}

// Validate checks the kernel's structural requirements.
func (k *Kernel) Validate() error {
	for name, block := range map[string][]isa.Inst{
		"Init": k.Init, "Slice": k.Slice, "CD": k.CD, "Step": k.Step,
	} {
		if err := straightLine(block); err != nil {
			return fmt.Errorf("xform %s: %s: %w", k.Name, name, err)
		}
	}
	if !blockWrites(k.Slice).has(k.Pred) {
		return fmt.Errorf("xform %s: Slice does not write the predicate register %s", k.Name, k.Pred)
	}
	if len(k.Scratch) < 2+len(k.inductionRegs()) {
		return fmt.Errorf("xform %s: need %d scratch registers, have %d",
			k.Name, 2+len(k.inductionRegs()), len(k.Scratch))
	}
	used := blockReads(k.Init) | blockWrites(k.Init) |
		blockReads(k.Slice) | blockWrites(k.Slice) | blockReads(k.CD) |
		blockWrites(k.CD) | blockReads(k.Step) | blockWrites(k.Step)
	used.add(k.Counter)
	for _, r := range k.Scratch {
		if used.has(r) {
			return fmt.Errorf("xform %s: scratch register %s is used by the kernel", k.Name, r)
		}
	}
	// The induction step must not consume values the slice computes:
	// both decoupled loops re-execute it independently.
	if blockWrites(k.Slice).intersects(upwardExposed(k.Step)) {
		return fmt.Errorf("xform %s: Step reads values computed by Slice", k.Name)
	}
	return nil
}

// inductionRegs returns Step's written registers, in first-write order.
func (k *Kernel) inductionRegs() []isa.Reg {
	var seen regSet
	var out []isa.Reg
	for _, in := range k.Step {
		for r := isa.Reg(1); r < isa.NumRegs; r++ {
			if writes(in).has(r) && !seen.has(r) {
				seen.add(r)
				out = append(out, r)
			}
		}
	}
	return out
}

// Classify performs the separability analysis of §II-B: the branch's
// backward slice (Slice, plus the inductions feeding it) must not depend on
// the control-dependent region.
func (k *Kernel) Classify() (prog.BranchClass, error) {
	cdWrites := blockWrites(k.CD)
	sliceReads := blockReads(k.Slice)
	stepReads := blockReads(k.Step)
	switch {
	case cdWrites.intersects(sliceReads):
		return prog.Inseparable, fmt.Errorf("xform %s: CD writes registers the branch slice reads (loop-carried dependence)", k.Name)
	case cdWrites.intersects(stepReads) || cdWrites.has(k.Counter):
		return prog.Inseparable, fmt.Errorf("xform %s: CD writes the loop's induction state", k.Name)
	case !k.NoAlias && k.hasLoads(k.Slice) && k.hasStores(k.CD):
		return prog.Inseparable, fmt.Errorf("xform %s: possible memory aliasing between slice loads and CD stores (set NoAlias after checking)", k.Name)
	}
	return prog.SeparableTotal, nil
}

func (k *Kernel) hasLoads(block []isa.Inst) bool {
	for _, in := range block {
		if in.Op.IsLoad() && in.Op != isa.PREF {
			return true
		}
	}
	return false
}

func (k *Kernel) hasStores(block []isa.Inst) bool {
	for _, in := range block {
		if in.Op.IsStore() {
			return true
		}
	}
	return false
}

// communicated returns the registers CD consumes that Slice produces — the
// values that must flow from the first loop to the second (§IV-B).
func (k *Kernel) communicated() []isa.Reg {
	need := upwardExposed(k.CD) & blockWrites(k.Slice)
	var out []isa.Reg
	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		if need.has(r) {
			out = append(out, r)
		}
	}
	return out
}

// backwardSlice returns the sub-sequence of block needed to compute the
// given registers, by backward dataflow closure.
func backwardSlice(block []isa.Inst, want regSet) []isa.Inst {
	needed := want
	keep := make([]bool, len(block))
	for i := len(block) - 1; i >= 0; i-- {
		if writes(block[i]).intersects(needed) {
			keep[i] = true
			needed &^= writes(block[i])
			needed |= reads(block[i])
		}
	}
	var out []isa.Inst
	for i, k := range keep {
		if k {
			out = append(out, block[i])
		}
	}
	return out
}

func emitBlock(b *prog.Builder, block []isa.Inst) {
	for _, in := range block {
		b.Raw(in)
	}
}

// Base emits the untransformed loop.
func (k *Kernel) Base() (*prog.Program, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	b := prog.NewBuilder()
	emitBlock(b, k.Init)
	b.Label("loop")
	emitBlock(b, k.Slice)
	if k.Note != "" {
		b.Note(k.Note, prog.SeparableTotal)
	}
	b.Branch(isa.BEQ, k.Pred, isa.Zero, "skip")
	emitBlock(b, k.CD)
	b.Label("skip")
	emitBlock(b, k.Step)
	b.I(isa.ADDI, k.Counter, k.Counter, -1)
	b.Branch(isa.BNE, k.Counter, isa.Zero, "loop")
	b.Halt()
	return b.Build()
}

// CFD emits the decoupled transformation: strip-mined BQ-sized chunks, a
// predicate-generating loop, and a consuming loop. With useVQ the
// communicated values travel through the value queue (CFD+); otherwise
// their backward slices are recomputed in the second loop.
func (k *Kernel) CFD(useVQ bool) (*prog.Program, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if cls, err := k.Classify(); cls != prog.SeparableTotal {
		return nil, err
	}
	inductions := k.inductionRegs()
	chunkReg, tmpReg := k.Scratch[0], k.Scratch[1]
	shadows := k.Scratch[2 : 2+len(inductions)]

	comm := k.communicated()
	var recompute []isa.Inst
	if !useVQ {
		var want regSet
		for _, r := range comm {
			want.add(r)
		}
		recompute = backwardSlice(k.Slice, want)
		// Recomputation is only sound when the recomputed slice reads
		// nothing the slice itself produced (e.g. an LCG register that
		// feeds itself would advance twice). Such values must travel
		// through the VQ instead.
		if upwardExposed(recompute).intersects(blockWrites(k.Slice)) {
			return nil, fmt.Errorf("xform %s: communicated values depend on slice-internal state and cannot be recomputed; use CFD(useVQ=true)", k.Name)
		}
	}
	chunkSize := int64(128) // the architectural BQ size (§III-B)
	if useVQ {
		chunkSize = 64 // VQ entries pin physical registers; see config
	}

	b := prog.NewBuilder()
	emitBlock(b, k.Init)
	b.Label("chunk")
	// chunkN = min(chunkSize, Counter)
	b.Li(chunkReg, chunkSize)
	b.R(isa.SLT, tmpReg, k.Counter, chunkReg)
	b.R(isa.CMOVNZ, chunkReg, k.Counter, tmpReg)
	// Snapshot induction registers.
	for i, r := range inductions {
		b.Mov(shadows[i], r)
	}
	// Loop 1: the branch slice.
	b.Mov(tmpReg, chunkReg)
	b.Label("gen")
	emitBlock(b, k.Slice)
	b.PushBQ(k.Pred)
	if useVQ {
		for _, r := range comm {
			b.PushVQ(r)
		}
	}
	emitBlock(b, k.Step)
	b.I(isa.ADDI, tmpReg, tmpReg, -1)
	b.Branch(isa.BNE, tmpReg, isa.Zero, "gen")
	// Restore inductions for the second loop.
	for i, r := range inductions {
		b.Mov(r, shadows[i])
	}
	// Loop 2: the branch and its control-dependent region.
	b.Mov(tmpReg, chunkReg)
	b.Label("use")
	if useVQ {
		for _, r := range comm {
			b.PopVQ(r)
		}
	}
	if k.Note != "" {
		b.Note(k.Note+" (decoupled)", prog.SeparableTotal)
	}
	b.BranchBQ("work")
	b.Jump("skip")
	b.Label("work")
	if !useVQ {
		emitBlock(b, recompute)
	}
	emitBlock(b, k.CD)
	b.Label("skip")
	emitBlock(b, k.Step)
	b.I(isa.ADDI, tmpReg, tmpReg, -1)
	b.Branch(isa.BNE, tmpReg, isa.Zero, "use")
	b.R(isa.SUB, k.Counter, k.Counter, chunkReg)
	b.Branch(isa.BNE, k.Counter, isa.Zero, "chunk")
	b.Halt()
	return b.Build()
}

// DFD emits the data-flow decoupling transformation (§V): each chunk is
// preceded by a loop containing only the slice's loads — as prefetches —
// and their address slices.
func (k *Kernel) DFD() (*prog.Program, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	inductions := k.inductionRegs()
	chunkReg, tmpReg := k.Scratch[0], k.Scratch[1]
	shadows := k.Scratch[2 : 2+len(inductions)]

	// The prefetch body: for each load in Slice, the backward slice of
	// its address register, then a PREF. Loads themselves are replaced
	// by prefetches, so later loads depending on loaded values (pointer
	// chasing) keep their address slices via the recursive closure.
	var pfBody []isa.Inst
	var want regSet
	for _, in := range k.Slice {
		if in.Op.IsLoad() && in.Op != isa.PREF {
			want.add(in.Rs1)
		}
	}
	pfBody = append(pfBody, backwardSlice(k.Slice, want)...)
	for _, in := range k.Slice {
		if in.Op.IsLoad() && in.Op != isa.PREF {
			pfBody = append(pfBody, isa.Inst{Op: isa.PREF, Rs1: in.Rs1, Imm: in.Imm})
		}
	}

	b := prog.NewBuilder()
	emitBlock(b, k.Init)
	b.Label("chunk")
	b.Li(chunkReg, 128)
	b.R(isa.SLT, tmpReg, k.Counter, chunkReg)
	b.R(isa.CMOVNZ, chunkReg, k.Counter, tmpReg)
	for i, r := range inductions {
		b.Mov(shadows[i], r)
	}
	// Prefetch loop.
	b.Mov(tmpReg, chunkReg)
	b.Label("pf")
	emitBlock(b, pfBody)
	emitBlock(b, k.Step)
	b.I(isa.ADDI, tmpReg, tmpReg, -1)
	b.Branch(isa.BNE, tmpReg, isa.Zero, "pf")
	for i, r := range inductions {
		b.Mov(r, shadows[i])
	}
	// Original loop over the warmed chunk.
	b.Mov(tmpReg, chunkReg)
	b.Label("loop")
	emitBlock(b, k.Slice)
	if k.Note != "" {
		b.Note(k.Note, prog.SeparableTotal)
	}
	b.Branch(isa.BEQ, k.Pred, isa.Zero, "skip")
	emitBlock(b, k.CD)
	b.Label("skip")
	emitBlock(b, k.Step)
	b.I(isa.ADDI, tmpReg, tmpReg, -1)
	b.Branch(isa.BNE, tmpReg, isa.Zero, "loop")
	b.R(isa.SUB, k.Counter, k.Counter, chunkReg)
	b.Branch(isa.BNE, k.Counter, isa.Zero, "chunk")
	b.Halt()
	return b.Build()
}
