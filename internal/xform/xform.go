// Package xform is the automatic CFD transformation pass — the analog of
// the gcc pass the paper describes (§III-B): "CFD can be applied either
// manually by the programmer or automatically by the compiler. We
// implemented a gcc compiler pass for CFD ... and demonstrated comparable
// performance to manual CFD for totally separable branches."
//
// The pass operates on structured loop kernels: straight-line instruction
// blocks for the branch slice (predicate computation), the
// control-dependent region, and the induction step. It
//
//   - verifies separability by register dataflow (the branch's backward
//     slice must not read anything its control-dependent region writes,
//     §II-B),
//   - computes the values the control-dependent region consumes from the
//     slice and either recomputes their backward slices in the second loop
//     (plain CFD) or routes them through the value queue (CFD+, §IV-B),
//   - strip-mines the loop into chunks sized from the architectural queue
//     capacities (§III-B, Params), snapshotting and restoring the
//     induction registers around the decoupled loop pair,
//   - supports early-exit regions through the BQ's Mark/Forward bulk-pop
//     (§IV-A), multi-pass kernels, software-pipelined predicate hoisting,
//     the DFD prefetch transformation (§V) and the combined CFD+DFD form
//     (Fig 26), and — on the LoopKernel form — the trip-count-queue
//     variants of §IV-C and Fig 28.
//
// Three kernel forms implement the Form interface: Kernel (single-level),
// NestedKernel (two guard levels, the astar region #1 shape), and
// LoopKernel (hard branch inside a data-dependent inner loop, the astar
// region #2 shape).
package xform

import (
	"fmt"

	"cfd/internal/isa"
	"cfd/internal/prog"
)

// Kernel is a structured single-level loop:
//
//	Init                     // once
//	pass:                    // only with Passes: outer pass loop
//	    PassInit             // re-arms Counter and per-pass cursors
//	loop:
//	    Slice                // computes Pred (may load; straight-line)
//	    if Pred == 0 goto skip
//	    CD                   // control-dependent region (straight-line)
//	    Exit                 // optional: computes ExitPred
//	    if ExitPred != 0 goto done
//	skip:
//	    Step                 // induction updates (straight-line)
//	    Counter--
//	    if Counter != 0 goto loop
//	    Passes--; if Passes != 0 goto pass
//	done:
//	Fini                     // once (result stores)
//	halt
type Kernel struct {
	Name string

	Init     []isa.Inst
	PassInit []isa.Inst // per-pass setup; requires Passes
	Slice    []isa.Inst
	CD       []isa.Inst
	Exit     []isa.Inst // early-exit check after CD (§IV-A); requires ExitPred
	Step     []isa.Inst
	Fini     []isa.Inst // epilogue before halt

	// Pred holds the predicate after Slice (non-zero = execute CD).
	Pred isa.Reg
	// ExitPred, when non-zero, holds the early-exit predicate after Exit
	// (non-zero = leave the region). It must be written only by Exit.
	ExitPred isa.Reg
	// Counter holds the trip count after Init (or PassInit).
	Counter isa.Reg
	// Passes, when non-zero, holds the outer pass count after Init.
	Passes isa.Reg
	// Scratch lists registers the pass may clobber: at least two for
	// strip-mining plus one per induction register (Step write).
	Scratch []isa.Reg
	// NoAlias asserts that loads in Slice never alias stores in CD —
	// memory disjointness is the caller's (programmer's/compiler's)
	// obligation, exactly as in the paper's manual transformations.
	NoAlias bool
	// Lookahead is the push-ahead distance for the Hoist transform
	// (default 4 when zero).
	Lookahead int

	// Note annotates the hard branch for the classification study;
	// LoopNote optionally annotates the loop back-edge in the base
	// program, and ExitNote the early-exit branch.
	Note     string
	LoopNote string
	ExitNote string
}

// KernelName implements Form.
func (k *Kernel) KernelName() string { return k.Name }

// Transforms implements Form: the transforms that can apply to a
// single-level kernel.
func (k *Kernel) Transforms() []Transform {
	return []Transform{TBase, TCFD, TCFDPlus, TDFD, TCFDDFD, THoist, TIfConvert}
}

// Apply implements Form.
func (k *Kernel) Apply(t Transform, p Params) (*prog.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	switch t {
	case TBase:
		return k.Base()
	case TCFD:
		return k.CFD(p, false)
	case TCFDPlus:
		return k.CFD(p, true)
	case TDFD:
		return k.DFD(p)
	case TCFDDFD:
		return k.CFDDFD(p)
	case THoist:
		return k.Hoist(p)
	case TIfConvert:
		return k.IfConvert()
	case TCFDTQ, TCFDBQ, TCFDBQTQ:
		return nil, fmt.Errorf("xform %s: %s requires a loop-branch kernel (LoopKernel, §IV-C/Fig 28); this kernel's branch is not inside a data-dependent inner loop", k.Name, t)
	}
	return nil, fmt.Errorf("xform %s: unknown transform %q", k.Name, t)
}

// regSet is a small register set.
type regSet uint32

func (s regSet) has(r isa.Reg) bool       { return s&(1<<r) != 0 }
func (s *regSet) add(r isa.Reg)           { *s |= 1 << r }
func (s regSet) intersects(o regSet) bool { return s&o&^1 != 0 } // r0 never counts

// reads returns the registers an instruction reads (conditional moves read
// their destination).
func reads(in isa.Inst) regSet {
	var s regSet
	if in.Op.ReadsRs1() {
		s.add(in.Rs1)
	}
	if in.Op.ReadsRs2() {
		s.add(in.Rs2)
	}
	if in.Op == isa.CMOVZ || in.Op == isa.CMOVNZ {
		s.add(in.Rd)
	}
	return s
}

// writes returns the register an instruction writes, as a set.
func writes(in isa.Inst) regSet {
	var s regSet
	if in.Op.WritesRd() && in.Rd != isa.Zero {
		s.add(in.Rd)
	}
	return s
}

func blockReads(block []isa.Inst) regSet {
	var s regSet
	for _, in := range block {
		s |= reads(in)
	}
	return s
}

func blockWrites(block []isa.Inst) regSet {
	var s regSet
	for _, in := range block {
		s |= writes(in)
	}
	return s
}

// upwardExposed returns the registers read by a block before any write in
// the block itself — its live-in set.
func upwardExposed(block []isa.Inst) regSet {
	var exposed, written regSet
	for _, in := range block {
		exposed |= reads(in) &^ written
		written |= writes(in)
	}
	return exposed
}

func straightLine(block []isa.Inst) error {
	for _, in := range block {
		if in.Op.IsControl() || in.Op == isa.HALT {
			return fmt.Errorf("control transfer %s inside a straight-line block", in)
		}
		if in.Op.IsCFD() {
			return fmt.Errorf("CFD instruction %s inside a kernel block", in)
		}
	}
	return nil
}

func hasLoads(block []isa.Inst) bool {
	for _, in := range block {
		if in.Op.IsLoad() && in.Op != isa.PREF {
			return true
		}
	}
	return false
}

func hasStores(block []isa.Inst) bool {
	for _, in := range block {
		if in.Op.IsStore() {
			return true
		}
	}
	return false
}

func (k *Kernel) hasExit() bool { return len(k.Exit) > 0 || k.ExitPred != 0 }

// blocks returns every instruction block with its name, for uniform
// structural checks.
func (k *Kernel) blocks() map[string][]isa.Inst {
	return map[string][]isa.Inst{
		"Init": k.Init, "PassInit": k.PassInit, "Slice": k.Slice,
		"CD": k.CD, "Exit": k.Exit, "Step": k.Step, "Fini": k.Fini,
	}
}

// Validate checks the kernel's structural requirements.
func (k *Kernel) Validate() error {
	for name, block := range k.blocks() {
		if err := straightLine(block); err != nil {
			return fmt.Errorf("xform %s: %s: %w", k.Name, name, err)
		}
	}
	if !blockWrites(k.Slice).has(k.Pred) {
		return fmt.Errorf("xform %s: Slice does not write the predicate register %s", k.Name, k.Pred)
	}
	if (k.Passes != 0) != (len(k.PassInit) > 0) {
		return fmt.Errorf("xform %s: Passes and PassInit must be set together (multi-pass kernels re-arm Counter in PassInit)", k.Name)
	}
	if k.Passes != 0 {
		if !blockWrites(k.PassInit).has(k.Counter) {
			return fmt.Errorf("xform %s: PassInit does not re-arm the counter register %s", k.Name, k.Counter)
		}
		if (blockWrites(k.Slice) | blockWrites(k.CD) | blockWrites(k.Step) | blockWrites(k.Exit) | blockWrites(k.PassInit)).has(k.Passes) {
			return fmt.Errorf("xform %s: pass counter %s is written inside the pass body", k.Name, k.Passes)
		}
	}
	if (len(k.Exit) > 0) != (k.ExitPred != 0) {
		return fmt.Errorf("xform %s: Exit and ExitPred must be set together", k.Name)
	}
	if k.hasExit() {
		if !blockWrites(k.Exit).has(k.ExitPred) {
			return fmt.Errorf("xform %s: early-exit block does not write the exit predicate %s — a non-exiting exit check cannot terminate the region", k.Name, k.ExitPred)
		}
		if (blockWrites(k.Init) | blockWrites(k.PassInit) | blockWrites(k.Slice) | blockWrites(k.CD) | blockWrites(k.Step) | blockWrites(k.Fini)).has(k.ExitPred) {
			return fmt.Errorf("xform %s: exit predicate %s must be written only by the Exit block", k.Name, k.ExitPred)
		}
	}
	if len(k.Scratch) < 2+len(k.inductionRegs()) {
		return fmt.Errorf("xform %s: need %d scratch registers, have %d",
			k.Name, 2+len(k.inductionRegs()), len(k.Scratch))
	}
	var used regSet
	for _, block := range k.blocks() {
		used |= blockReads(block) | blockWrites(block)
	}
	used.add(k.Counter)
	if k.Passes != 0 {
		used.add(k.Passes)
	}
	for _, r := range k.Scratch {
		if used.has(r) {
			return fmt.Errorf("xform %s: scratch register %s is used by the kernel", k.Name, r)
		}
	}
	// The induction step must not consume values the slice computes:
	// both decoupled loops re-execute it independently.
	if blockWrites(k.Slice).intersects(upwardExposed(k.Step)) {
		return fmt.Errorf("xform %s: Step reads values computed by Slice", k.Name)
	}
	return nil
}

// inductionRegs returns Step's written registers, in first-write order.
func (k *Kernel) inductionRegs() []isa.Reg {
	var seen regSet
	var out []isa.Reg
	for _, in := range k.Step {
		for r := isa.Reg(1); r < isa.NumRegs; r++ {
			if writes(in).has(r) && !seen.has(r) {
				seen.add(r)
				out = append(out, r)
			}
		}
	}
	return out
}

// Classify performs the separability analysis of §II-B: the branch's
// backward slice (Slice, plus the inductions feeding it) must not depend
// on the control-dependent region. The Exit block executes on the taken
// path, so it counts as control-dependent too.
func (k *Kernel) Classify() (prog.BranchClass, error) {
	cdWrites := blockWrites(k.CD) | blockWrites(k.Exit)
	// Only the slice's live-ins matter: a register the slice writes before
	// reading is iteration-private, so a CD write to it carries nothing.
	sliceReads := upwardExposed(k.Slice)
	stepReads := blockReads(k.Step)
	switch {
	case cdWrites.intersects(sliceReads):
		return prog.Inseparable, fmt.Errorf("xform %s: CD writes registers the branch slice reads (loop-carried dependence)", k.Name)
	case cdWrites.intersects(stepReads) || cdWrites.has(k.Counter) || (k.Passes != 0 && cdWrites.has(k.Passes)):
		return prog.Inseparable, fmt.Errorf("xform %s: CD writes the loop's induction state", k.Name)
	case !k.NoAlias && hasLoads(k.Slice) && (hasStores(k.CD) || hasStores(k.Exit)):
		return prog.Inseparable, fmt.Errorf("xform %s: possible memory aliasing between slice loads and CD stores (set NoAlias after checking)", k.Name)
	}
	return prog.SeparableTotal, nil
}

// requireSeparable is the transform-entry guard: a decoupling transform
// must reject every kernel that is not totally separable, with an
// explicit error even if the classifier produced a class without one.
func (k *Kernel) requireSeparable() error {
	cls, err := k.Classify()
	if cls == prog.SeparableTotal {
		return nil
	}
	if err == nil {
		err = fmt.Errorf("xform %s: branch classified %v, need %v for decoupling", k.Name, cls, prog.SeparableTotal)
	}
	return err
}

// communicated returns the registers CD consumes that Slice produces — the
// values that must flow from the first loop to the second (§IV-B).
func (k *Kernel) communicated() []isa.Reg {
	need := (upwardExposed(k.CD) | upwardExposed(k.Exit)) & blockWrites(k.Slice)
	var out []isa.Reg
	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		if need.has(r) {
			out = append(out, r)
		}
	}
	return out
}

// recomputeSlice returns the backward slice of Slice that recomputes the
// communicated values in the consuming loop, or an error when
// recomputation is unsound (slice-internal carried state must travel
// through the VQ instead).
func (k *Kernel) recomputeSlice() ([]isa.Inst, error) {
	var want regSet
	for _, r := range k.communicated() {
		want.add(r)
	}
	re := backwardSlice(k.Slice, want)
	if upwardExposed(re).intersects(blockWrites(k.Slice)) {
		return nil, fmt.Errorf("xform %s: communicated values depend on slice-internal state and cannot be recomputed; use CFD(useVQ=true)", k.Name)
	}
	return re, nil
}

// backwardSlice returns the sub-sequence of block needed to compute the
// given registers, by backward dataflow closure.
func backwardSlice(block []isa.Inst, want regSet) []isa.Inst {
	needed := want
	keep := make([]bool, len(block))
	for i := len(block) - 1; i >= 0; i-- {
		if writes(block[i]).intersects(needed) {
			keep[i] = true
			needed &^= writes(block[i])
			needed |= reads(block[i])
		}
	}
	var out []isa.Inst
	for i, k := range keep {
		if k {
			out = append(out, block[i])
		}
	}
	return out
}

// prefetchBody builds the DFD loop body for a slice (§V): each load's
// address slice, with a PREF placed at the load's own program point — so
// an address register reused for several loads prefetches each one at the
// moment its address is live, not whatever the register holds at the end
// of the slice. Loads feeding later addresses (pointer chasing) stay real
// loads via the backward closure.
func prefetchBody(slice []isa.Inst) []isa.Inst {
	keep := make([]bool, len(slice))
	pref := make([]bool, len(slice))
	for i, in := range slice {
		if !in.Op.IsLoad() || in.Op == isa.PREF {
			continue
		}
		pref[i] = true
		// Close over the address register's producers before this point.
		var need regSet
		need.add(in.Rs1)
		for j := i - 1; j >= 0; j-- {
			if writes(slice[j]).intersects(need) {
				keep[j] = true
				need &^= writes(slice[j])
				need |= reads(slice[j])
			}
		}
	}
	var body []isa.Inst
	for i, in := range slice {
		if keep[i] {
			body = append(body, in)
		}
		if pref[i] {
			body = append(body, isa.Inst{Op: isa.PREF, Rs1: in.Rs1, Imm: in.Imm})
		}
	}
	return body
}

// substituteRegs rewrites every register operand through the given map —
// used by Hoist to run the lookahead slice on shadow inductions.
func substituteRegs(block []isa.Inst, sub map[isa.Reg]isa.Reg) []isa.Inst {
	out := make([]isa.Inst, len(block))
	for i, in := range block {
		if r, ok := sub[in.Rd]; ok {
			in.Rd = r
		}
		if r, ok := sub[in.Rs1]; ok {
			in.Rs1 = r
		}
		if r, ok := sub[in.Rs2]; ok {
			in.Rs2 = r
		}
		out[i] = in
	}
	return out
}

func emitBlock(b *prog.Builder, block []isa.Inst) {
	for _, in := range block {
		b.Raw(in)
	}
}

// emitChunkN emits chunkReg = min(size, Counter) using tmpReg.
func emitChunkN(b *prog.Builder, chunkReg, tmpReg, counter isa.Reg, size int64) {
	b.Li(chunkReg, size)
	b.R(isa.SLT, tmpReg, counter, chunkReg)
	b.R(isa.CMOVNZ, chunkReg, counter, tmpReg)
}

func emitSnapshot(b *prog.Builder, shadows, inductions []isa.Reg) {
	for i, r := range inductions {
		b.Mov(shadows[i], r)
	}
}

func emitRestore(b *prog.Builder, shadows, inductions []isa.Reg) {
	for i, r := range inductions {
		b.Mov(r, shadows[i])
	}
}

// passOpen emits the pass-loop label, and passClose the pass back-edge;
// both are no-ops for single-pass kernels.
func (k *Kernel) passOpen(b *prog.Builder) {
	if k.Passes != 0 {
		b.Label("pass")
		emitBlock(b, k.PassInit)
	}
}

func (k *Kernel) passClose(b *prog.Builder) {
	if k.Passes != 0 {
		b.I(isa.ADDI, k.Passes, k.Passes, -1)
		b.Branch(isa.BNE, k.Passes, isa.Zero, "pass")
	}
}

// finish emits the optional done label, the epilogue and the halt.
func (k *Kernel) finish(b *prog.Builder) {
	if k.hasExit() {
		b.Label("done")
	}
	emitBlock(b, k.Fini)
	b.Halt()
}

func (k *Kernel) noteBranch(b *prog.Builder, suffix string) {
	if k.Note != "" {
		b.Note(k.Note+suffix, prog.SeparableTotal)
	}
}

func (k *Kernel) noteExit(b *prog.Builder) {
	if k.ExitNote != "" {
		b.Note(k.ExitNote, prog.EasyToPredict)
	}
}

// emitBaseLoop emits the untransformed loop body over Counter iterations,
// branching to exitLabel on early exit. Label names are prefixed so the
// loop can be instantiated more than once in a program.
func (k *Kernel) emitBaseLoop(b *prog.Builder, prefix, exitLabel string, noteLoop bool) {
	b.Label(prefix + "loop")
	emitBlock(b, k.Slice)
	k.noteBranch(b, "")
	b.Branch(isa.BEQ, k.Pred, isa.Zero, prefix+"skip")
	emitBlock(b, k.CD)
	if k.hasExit() {
		emitBlock(b, k.Exit)
		k.noteExit(b)
		b.Branch(isa.BNE, k.ExitPred, isa.Zero, exitLabel)
	}
	b.Label(prefix + "skip")
	emitBlock(b, k.Step)
	b.I(isa.ADDI, k.Counter, k.Counter, -1)
	if noteLoop && k.LoopNote != "" {
		b.Note(k.LoopNote, prog.EasyToPredict)
	}
	b.Branch(isa.BNE, k.Counter, isa.Zero, prefix+"loop")
}

// Base emits the untransformed loop.
func (k *Kernel) Base() (*prog.Program, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	b := prog.NewBuilder()
	emitBlock(b, k.Init)
	k.passOpen(b)
	k.emitBaseLoop(b, "", "done", true)
	k.passClose(b)
	k.finish(b)
	return b.Build()
}

// CFD emits the decoupled transformation: strip-mined chunks sized from
// the BQ capacity, a predicate-generating loop, and a consuming loop.
// With useVQ the communicated values travel through the value queue
// (CFD+); otherwise their backward slices are recomputed in the second
// loop. Early-exit kernels mark the BQ after the generating loop and
// discard the leftover predicates with a Forward bulk-pop when the region
// exits mid-chunk (§IV-A).
func (k *Kernel) CFD(p Params, useVQ bool) (*prog.Program, error) {
	return k.emitCFD(p, useVQ, false)
}

// CFDDFD emits the combined transformation of Fig 26: each chunk runs the
// DFD prefetch loop first, then the decoupled CFD loop pair over the
// warmed data.
func (k *Kernel) CFDDFD(p Params) (*prog.Program, error) {
	return k.emitCFD(p, false, true)
}

func (k *Kernel) emitCFD(p Params, useVQ, withPrefetch bool) (*prog.Program, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := k.requireSeparable(); err != nil {
		return nil, err
	}
	if useVQ && k.hasExit() {
		return nil, fmt.Errorf("xform %s: CFD+ cannot be applied to an early-exit kernel: the VQ has no mark/forward to discard leftover values; use plain CFD", k.Name)
	}
	inductions := k.inductionRegs()
	chunkReg, tmpReg := k.Scratch[0], k.Scratch[1]
	shadows := k.Scratch[2 : 2+len(inductions)]

	comm := k.communicated()
	var recompute []isa.Inst
	if !useVQ {
		var err error
		if recompute, err = k.recomputeSlice(); err != nil {
			return nil, err
		}
	}
	chunkSize := p.bqChunk()
	if useVQ {
		chunkSize = p.vqChunk()
	}

	b := prog.NewBuilder()
	emitBlock(b, k.Init)
	k.passOpen(b)
	b.Label("chunk")
	emitChunkN(b, chunkReg, tmpReg, k.Counter, chunkSize)
	emitSnapshot(b, shadows, inductions)
	if withPrefetch {
		// DFD prefetch loop over the chunk (§V, Fig 26).
		pf := prefetchBody(k.Slice)
		b.Mov(tmpReg, chunkReg)
		b.Label("pf")
		emitBlock(b, pf)
		emitBlock(b, k.Step)
		b.I(isa.ADDI, tmpReg, tmpReg, -1)
		b.Branch(isa.BNE, tmpReg, isa.Zero, "pf")
		emitRestore(b, shadows, inductions)
	}
	// Loop 1: the branch slice. Only the predicate's backward slice is
	// needed here (plus the communicated values when they travel through
	// the VQ, and anything Step reads): slice instructions that exist
	// solely for the consuming loop are recomputed there instead.
	var genWant regSet
	genWant.add(k.Pred)
	if useVQ {
		for _, r := range comm {
			genWant.add(r)
		}
	}
	genWant |= upwardExposed(k.Step) & blockWrites(k.Slice)
	gen := backwardSlice(k.Slice, genWant)
	b.Mov(tmpReg, chunkReg)
	b.Label("gen")
	emitBlock(b, gen)
	b.PushBQ(k.Pred)
	if useVQ {
		for _, r := range comm {
			b.PushVQ(r)
		}
	}
	emitBlock(b, k.Step)
	b.I(isa.ADDI, tmpReg, tmpReg, -1)
	b.Branch(isa.BNE, tmpReg, isa.Zero, "gen")
	if k.hasExit() {
		// Remember where this chunk's predicates end so a mid-chunk
		// exit can discard the leftovers in bulk (§IV-A).
		b.MarkBQ()
		// The exit predicate is written only by Exit; clear it so a
		// chunk with no taken iterations cannot see a stale value.
		b.Li(k.ExitPred, 0)
	}
	emitRestore(b, shadows, inductions)
	// Loop 2: the branch and its control-dependent region.
	b.Mov(tmpReg, chunkReg)
	b.Label("use")
	if useVQ {
		for _, r := range comm {
			b.PopVQ(r)
		}
	}
	k.noteBranch(b, " (decoupled)")
	b.BranchBQ("work")
	b.Jump("skip")
	b.Label("work")
	if !useVQ {
		emitBlock(b, recompute)
	}
	emitBlock(b, k.CD)
	if k.hasExit() {
		emitBlock(b, k.Exit)
		k.noteExit(b)
		b.Branch(isa.BNE, k.ExitPred, isa.Zero, "bail")
	}
	b.Label("skip")
	emitBlock(b, k.Step)
	b.I(isa.ADDI, tmpReg, tmpReg, -1)
	b.Branch(isa.BNE, tmpReg, isa.Zero, "use")
	if k.hasExit() {
		// Normal completion falls through: Forward consumes the mark
		// with nothing left to pop. A mid-chunk exit lands here with
		// ExitPred set and unconsumed predicates to discard.
		b.Label("bail")
		b.ForwardBQ()
		b.Branch(isa.BNE, k.ExitPred, isa.Zero, "done")
	}
	b.R(isa.SUB, k.Counter, k.Counter, chunkReg)
	b.Branch(isa.BNE, k.Counter, isa.Zero, "chunk")
	k.passClose(b)
	k.finish(b)
	return b.Build()
}

// DFD emits the data-flow decoupling transformation (§V): each chunk is
// preceded by a loop containing only the slice's loads — as prefetches —
// and their address slices.
func (k *Kernel) DFD(p Params) (*prog.Program, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	inductions := k.inductionRegs()
	chunkReg, tmpReg := k.Scratch[0], k.Scratch[1]
	shadows := k.Scratch[2 : 2+len(inductions)]
	pf := prefetchBody(k.Slice)

	b := prog.NewBuilder()
	emitBlock(b, k.Init)
	k.passOpen(b)
	b.Label("chunk")
	emitChunkN(b, chunkReg, tmpReg, k.Counter, p.bqChunk())
	emitSnapshot(b, shadows, inductions)
	// Prefetch loop.
	b.Mov(tmpReg, chunkReg)
	b.Label("pf")
	emitBlock(b, pf)
	emitBlock(b, k.Step)
	b.I(isa.ADDI, tmpReg, tmpReg, -1)
	b.Branch(isa.BNE, tmpReg, isa.Zero, "pf")
	emitRestore(b, shadows, inductions)
	// Original loop over the warmed chunk.
	b.Mov(tmpReg, chunkReg)
	b.Label("loop")
	emitBlock(b, k.Slice)
	k.noteBranch(b, "")
	b.Branch(isa.BEQ, k.Pred, isa.Zero, "skip")
	emitBlock(b, k.CD)
	if k.hasExit() {
		emitBlock(b, k.Exit)
		k.noteExit(b)
		b.Branch(isa.BNE, k.ExitPred, isa.Zero, "done")
	}
	b.Label("skip")
	emitBlock(b, k.Step)
	b.I(isa.ADDI, tmpReg, tmpReg, -1)
	b.Branch(isa.BNE, tmpReg, isa.Zero, "loop")
	b.R(isa.SUB, k.Counter, k.Counter, chunkReg)
	b.Branch(isa.BNE, k.Counter, isa.Zero, "chunk")
	k.passClose(b)
	k.finish(b)
	return b.Build()
}

// Hoist emits the software-pipelined push-ahead transformation: the
// predicate for iteration i+D is computed and pushed on shadow inductions
// while iteration i consumes its BQ entry — no strip-mining, a steady
// one-push-one-pop rhythm with a D-deep prologue and drain. It suits
// kernels whose trip counts are too small or whose passes are too short
// for chunked CFD to pay off. When a pass has D or fewer iterations the
// generated code falls back to the untransformed loop for that pass.
func (k *Kernel) Hoist(p Params) (*prog.Program, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := k.requireSeparable(); err != nil {
		return nil, err
	}
	if k.hasExit() {
		return nil, fmt.Errorf("xform %s: Hoist cannot be applied to an early-exit kernel: in-flight hoisted predicates have no mark to forward past", k.Name)
	}
	d := int64(k.Lookahead)
	if d == 0 {
		d = 4
	}
	if d < 1 || d >= int64(p.BQSize) {
		return nil, fmt.Errorf("xform %s: hoist distance %d must be in [1, BQ size %d)", k.Name, d, p.BQSize)
	}
	recompute, err := k.recomputeSlice()
	if err != nil {
		return nil, err
	}
	inductions := k.inductionRegs()
	chunkReg, tmpReg := k.Scratch[0], k.Scratch[1]
	shadows := k.Scratch[2 : 2+len(inductions)]
	sub := map[isa.Reg]isa.Reg{}
	for i, r := range inductions {
		sub[r] = shadows[i]
	}
	lookSlice := substituteRegs(k.Slice, sub)
	lookStep := substituteRegs(k.Step, sub)

	b := prog.NewBuilder()
	emitBlock(b, k.Init)
	k.passOpen(b)
	// Passes with Counter <= D cannot sustain the pipeline; run them
	// untransformed.
	b.Li(chunkReg, d)
	b.R(isa.SLT, tmpReg, chunkReg, k.Counter)
	b.Branch(isa.BEQ, tmpReg, isa.Zero, "smallloop")
	emitSnapshot(b, shadows, inductions)
	// Prologue: push the first D predicates on the shadow cursors.
	b.Mov(tmpReg, chunkReg)
	b.Label("pro")
	emitBlock(b, lookSlice)
	b.PushBQ(k.Pred)
	emitBlock(b, lookStep)
	b.I(isa.ADDI, tmpReg, tmpReg, -1)
	b.Branch(isa.BNE, tmpReg, isa.Zero, "pro")
	// Steady state: consume one predicate, push the one D ahead.
	b.R(isa.SUB, k.Counter, k.Counter, chunkReg)
	b.Label("steady")
	k.noteBranch(b, " (hoisted)")
	b.BranchBQ("work")
	b.Jump("skip")
	b.Label("work")
	emitBlock(b, recompute)
	emitBlock(b, k.CD)
	b.Label("skip")
	emitBlock(b, lookSlice)
	b.PushBQ(k.Pred)
	emitBlock(b, lookStep)
	emitBlock(b, k.Step)
	b.I(isa.ADDI, k.Counter, k.Counter, -1)
	b.Branch(isa.BNE, k.Counter, isa.Zero, "steady")
	// Drain the last D predicates.
	b.Mov(tmpReg, chunkReg)
	b.Label("drain")
	k.noteBranch(b, " (drain)")
	b.BranchBQ("dwork")
	b.Jump("dskip")
	b.Label("dwork")
	emitBlock(b, recompute)
	emitBlock(b, k.CD)
	b.Label("dskip")
	emitBlock(b, k.Step)
	b.I(isa.ADDI, tmpReg, tmpReg, -1)
	b.Branch(isa.BNE, tmpReg, isa.Zero, "drain")
	b.Jump("passend")
	// Fallback for short passes.
	k.emitBaseLoop(b, "small", "done", false)
	b.Label("passend")
	k.passClose(b)
	k.finish(b)
	return b.Build()
}
