package xform

import (
	"math/rand"
	"strings"
	"testing"

	"cfd/internal/config"
	"cfd/internal/emu"
	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/pipeline"
	"cfd/internal/prog"
)

// soplexKernel is the paper's Fig 8 loop expressed as a structured kernel:
// if (test[i] > theeps) { out[i] = f(test[i]); acc updates }.
func soplexKernel(n int64) *Kernel {
	return &Kernel{
		Name: "soplex-auto",
		Init: []isa.Inst{
			{Op: isa.ADDI, Rd: 1, Rs1: 0, Imm: 0x100000}, // test ptr
			{Op: isa.ADDI, Rd: 2, Rs1: 0, Imm: 0x800000}, // out ptr
			{Op: isa.ADDI, Rd: 3, Rs1: 0, Imm: 500},      // theeps
			{Op: isa.ADDI, Rd: 4, Rs1: 0, Imm: n},        // counter
			{Op: isa.ADDI, Rd: 12, Rs1: 0, Imm: 0},       // acc
		},
		Slice: []isa.Inst{
			{Op: isa.LD, Rd: 7, Rs1: 1, Imm: 0},  // x = test[i]
			{Op: isa.SLT, Rd: 8, Rs1: 3, Rs2: 7}, // p = theeps < x
		},
		CD: []isa.Inst{
			{Op: isa.SHLI, Rd: 9, Rs1: 7, Imm: 1}, // consumes x: a communicated value
			{Op: isa.ADDI, Rd: 9, Rs1: 9, Imm: 17},
			{Op: isa.SD, Rs1: 2, Rs2: 9, Imm: 0},
			{Op: isa.ADD, Rd: 12, Rs1: 12, Rs2: 9},
			{Op: isa.XOR, Rd: 10, Rs1: 12, Rs2: 7},
			{Op: isa.SHRI, Rd: 11, Rs1: 10, Imm: 2},
			{Op: isa.ADD, Rd: 12, Rs1: 12, Rs2: 11},
		},
		Step: []isa.Inst{
			{Op: isa.ADDI, Rd: 1, Rs1: 1, Imm: 8},
			{Op: isa.ADDI, Rd: 2, Rs1: 2, Imm: 8},
		},
		Pred:    8,
		Counter: 4,
		Scratch: []isa.Reg{20, 21, 22, 23},
		NoAlias: true,
		Note:    "test[i] > theeps",
	}
}

func kernelMem(n int64, seed int64) *mem.Memory {
	rng := rand.New(rand.NewSource(seed))
	m := mem.New()
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(rng.Int63n(1000))
	}
	m.WriteUint64s(0x100000, vals)
	return m
}

func runProg(t *testing.T, p *prog.Program, m *mem.Memory) *mem.Memory {
	t.Helper()
	mc := emu.New(p, m)
	if err := mc.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	return mc.Mem
}

func TestAutoCFDMatchesBase(t *testing.T) {
	const n = 1000
	k := soplexKernel(n)
	base, err := k.Base()
	if err != nil {
		t.Fatal(err)
	}
	want := runProg(t, base, kernelMem(n, 1))
	for _, useVQ := range []bool{false, true} {
		tp, err := k.CFD(DefaultParams(), useVQ)
		if err != nil {
			t.Fatalf("CFD(useVQ=%v): %v", useVQ, err)
		}
		got := runProg(t, tp, kernelMem(n, 1))
		if !want.Equal(got) {
			t.Errorf("CFD(useVQ=%v) output diverges from base", useVQ)
		}
	}
}

func TestAutoDFDMatchesBase(t *testing.T) {
	const n = 1000
	k := soplexKernel(n)
	base, _ := k.Base()
	want := runProg(t, base, kernelMem(n, 1))
	dfd, err := k.DFD(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	got := runProg(t, dfd, kernelMem(n, 1))
	if !want.Equal(got) {
		t.Error("DFD output diverges from base")
	}
	// The prefetch loop must contain PREF, not loads of test[].
	found := false
	for _, in := range dfd.Insts {
		if in.Op == isa.PREF {
			found = true
		}
	}
	if !found {
		t.Error("DFD emitted no prefetches")
	}
}

func TestAutoCFDSpeedsUpPipeline(t *testing.T) {
	// The paper's claim for the compiler pass: comparable performance to
	// manual CFD for totally separable branches — i.e., it must deliver
	// the misprediction elimination and a real speedup.
	const n = 8000
	k := soplexKernel(n)
	base, _ := k.Base()
	cfdP, err := k.CFD(DefaultParams(), false)
	if err != nil {
		t.Fatal(err)
	}
	run := func(p *prog.Program) *pipeline.Core {
		core, err := pipeline.New(config.SandyBridge(), p, kernelMem(n, 2))
		if err != nil {
			t.Fatal(err)
		}
		if err := core.Run(0); err != nil {
			t.Fatal(err)
		}
		return core
	}
	b := run(base)
	c := run(cfdP)
	if sp := float64(b.Stats.Cycles) / float64(c.Stats.Cycles); sp < 1.2 {
		t.Errorf("auto-CFD speedup = %.2f, want > 1.2", sp)
	}
	if c.Stats.MPKI() > b.Stats.MPKI()/5 {
		t.Errorf("auto-CFD MPKI %.2f vs base %.2f: mispredictions not eliminated",
			c.Stats.MPKI(), b.Stats.MPKI())
	}
	if c.Stats.BQPops == 0 {
		t.Error("auto-CFD used no BQ pops")
	}
}

func TestClassifyRejectsLoopCarriedDependence(t *testing.T) {
	k := soplexKernel(100)
	// Make the CD write a register the slice reads: inseparable.
	k.CD = append(k.CD, isa.Inst{Op: isa.ADDI, Rd: 3, Rs1: 3, Imm: 1})
	cls, err := k.Classify()
	if cls != prog.Inseparable || err == nil {
		t.Errorf("Classify = %v, %v; want Inseparable", cls, err)
	}
	if _, err := k.CFD(DefaultParams(), false); err == nil {
		t.Error("CFD accepted an inseparable kernel")
	}
}

func TestClassifyRejectsInductionClobber(t *testing.T) {
	k := soplexKernel(100)
	k.CD = append(k.CD, isa.Inst{Op: isa.ADDI, Rd: 1, Rs1: 1, Imm: 8})
	if cls, _ := k.Classify(); cls != prog.Inseparable {
		t.Errorf("Classify = %v, want Inseparable (CD writes an induction)", cls)
	}
}

func TestClassifyRequiresNoAliasAssertion(t *testing.T) {
	k := soplexKernel(100)
	k.NoAlias = false
	cls, err := k.Classify()
	if cls != prog.Inseparable || err == nil || !strings.Contains(err.Error(), "alias") {
		t.Errorf("Classify = %v, %v; want aliasing rejection", cls, err)
	}
}

func TestValidateCatchesStructuralErrors(t *testing.T) {
	cases := []struct {
		mutate func(*Kernel)
		want   string
	}{
		{func(k *Kernel) { k.Slice = append(k.Slice, isa.Inst{Op: isa.BEQ}) }, "control transfer"},
		{func(k *Kernel) { k.CD = append(k.CD, isa.Inst{Op: isa.PushBQ, Rs1: 1}) }, "CFD instruction"},
		{func(k *Kernel) { k.Pred = 25 }, "does not write the predicate"},
		{func(k *Kernel) { k.Scratch = k.Scratch[:2] }, "scratch"},
		{func(k *Kernel) { k.Scratch = []isa.Reg{7, 21, 22, 23} }, "used by the kernel"},
		{func(k *Kernel) {
			k.Step = append(k.Step, isa.Inst{Op: isa.ADD, Rd: 2, Rs1: 2, Rs2: 7})
		}, "Step reads values computed by Slice"},
	}
	for i, c := range cases {
		k := soplexKernel(100)
		c.mutate(k)
		err := k.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: err = %v, want containing %q", i, err, c.want)
		}
	}
}

func TestBackwardSlice(t *testing.T) {
	block := []isa.Inst{
		{Op: isa.ADDI, Rd: 5, Rs1: 1, Imm: 8}, // needed (feeds r6)
		{Op: isa.ADDI, Rd: 9, Rs1: 2, Imm: 1}, // dead for r6
		{Op: isa.ADD, Rd: 6, Rs1: 5, Rs2: 3},  // needed
	}
	var want regSet
	want.add(6)
	out := backwardSlice(block, want)
	if len(out) != 2 || out[0].Rd != 5 || out[1].Rd != 6 {
		t.Errorf("backwardSlice = %v", out)
	}
}

func TestCommunicatedValues(t *testing.T) {
	k := soplexKernel(100)
	comm := k.communicated()
	if len(comm) != 1 || comm[0] != 7 {
		t.Errorf("communicated = %v, want [r7] (x)", comm)
	}
}

func TestPointerChasingDFDAddressSlices(t *testing.T) {
	// A slice whose second load's address depends on the first load:
	// the DFD prefetch loop must keep the first load (address slice) and
	// prefetch both.
	k := &Kernel{
		Name: "chase",
		Init: []isa.Inst{
			{Op: isa.ADDI, Rd: 1, Rs1: 0, Imm: 0x100000},
			{Op: isa.ADDI, Rd: 4, Rs1: 0, Imm: 64},
		},
		Slice: []isa.Inst{
			{Op: isa.LD, Rd: 5, Rs1: 1, Imm: 0},   // p = a[i] (an address)
			{Op: isa.LD, Rd: 6, Rs1: 5, Imm: 0},   // v = *p
			{Op: isa.ANDI, Rd: 8, Rs1: 6, Imm: 1}, // pred
		},
		CD:      []isa.Inst{{Op: isa.ADDI, Rd: 12, Rs1: 12, Imm: 1}},
		Step:    []isa.Inst{{Op: isa.ADDI, Rd: 1, Rs1: 1, Imm: 8}},
		Pred:    8,
		Counter: 4,
		Scratch: []isa.Reg{20, 21, 22},
		NoAlias: true,
	}
	dfd, err := k.DFD(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Both a real LD (the address producer) and PREFs must appear in the
	// prefetch loop region (before the "loop" label).
	loopPC, _ := dfd.LabelAt("loop")
	var lds, prefs int
	for pc, in := range dfd.Insts {
		if uint64(pc) >= loopPC {
			break
		}
		switch {
		case in.Op == isa.PREF:
			prefs++
		case in.Op == isa.LD:
			lds++
		}
	}
	if prefs < 2 {
		t.Errorf("prefetch loop has %d PREFs, want 2", prefs)
	}
	if lds < 1 {
		t.Errorf("prefetch loop lost the address-producing load")
	}

	// And it still computes the same result.
	m := mem.New()
	for i := 0; i < 64; i++ {
		m.Write(0x100000+uint64(8*i), 8, uint64(0x200000+8*i))
		m.Write(0x200000+uint64(8*i), 8, uint64(i))
	}
	base, _ := k.Base()
	want := runProg(t, base, m.Clone())
	got := runProg(t, dfd, m.Clone())
	if !want.Equal(got) {
		t.Error("pointer-chasing DFD diverges")
	}
}
